package bench

import (
	"fmt"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/devsim"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/render"
)

// TierPoint is one row of the tier-placement ablation.
type TierPoint struct {
	RTT       time.Duration
	Thin      time.Duration // Compare through the remote main service
	Offloaded time.Duration // Compare through the pulled smart proxy
}

// RunTierAblation quantifies the §3.2 design choice the paper motivates
// but does not measure: at what link latency does pulling the logic
// tier pay off? For each RTT the shop's Compare runs once through the
// thin-client path and once through the pulled logic tier.
func RunTierAblation(cfg Config) ([]TierPoint, error) {
	cfg = cfg.withDefaults()
	rtts := []time.Duration{
		1 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
		20 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond,
	}
	fmt.Fprintln(cfg.Out, "Ablation: tier placement vs link latency (shop Compare)")
	fmt.Fprintf(cfg.Out, "%-12s %14s %14s %10s\n", "link RTT", "thin client", "logic pulled", "speedup")

	var out []TierPoint
	for _, rtt := range rtts {
		link := netsim.LinkProfile{Name: "ablation", Latency: rtt / 2}
		p, err := measureTierPoint(link)
		if err != nil {
			return nil, err
		}
		p.RTT = rtt
		out = append(out, p)
		speedup := float64(p.Thin) / float64(p.Offloaded)
		fmt.Fprintf(cfg.Out, "%-12s %14s %14s %9.1fx\n",
			fmtDur(rtt), fmtDur(p.Thin), fmtDur(p.Offloaded), speedup)
	}
	fmt.Fprintln(cfg.Out)
	return out, nil
}

func measureTierPoint(link netsim.LinkProfile) (TierPoint, error) {
	svc := shop.New()
	screen, err := core.NewNode(core.NodeConfig{Name: "screen", Profile: device.Touchscreen()})
	if err != nil {
		return TierPoint{}, err
	}
	defer screen.Close()
	if err := screen.RegisterApp(svc.App()); err != nil {
		return TierPoint{}, err
	}

	proxyCode := remote.NewProxyCodeRegistry()
	if err := shop.RegisterProxyCode(proxyCode); err != nil {
		return TierPoint{}, err
	}
	phone, err := core.NewNode(core.NodeConfig{
		Name: "phone", Profile: device.Nokia9300i(),
		ProxyCode: proxyCode, FreeMemoryKB: 8192,
	})
	if err != nil {
		return TierPoint{}, err
	}
	defer phone.Close()

	fabric := netsim.NewFabric()
	l, err := fabric.Listen("screen")
	if err != nil {
		return TierPoint{}, err
	}
	defer l.Close()
	screen.Serve(l)
	conn, err := fabric.Dial("screen", link)
	if err != nil {
		return TierPoint{}, err
	}
	session, err := phone.Connect(conn)
	if err != nil {
		return TierPoint{}, err
	}
	defer session.Close()

	// Force-pull the logic tier regardless of the adaptive threshold.
	app, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{
		Policy: pullAllPolicy{}, Trusted: true, SkipUI: true,
	})
	if err != nil {
		return TierPoint{}, err
	}
	defer app.Release()
	logic, ok := app.Deps[shop.LogicInterface]
	if !ok {
		return TierPoint{}, fmt.Errorf("bench: logic tier not pulled")
	}

	a, _ := svc.Catalog().Product("Malm")
	b, _ := svc.Catalog().Product("Duken")
	aMap := map[string]any{"name": a.Name, "price": a.Price}
	bMap := map[string]any{"name": b.Name, "price": b.Price}

	const rounds = 5
	var thin, offloaded time.Duration
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		if _, err := app.Invoke("Compare", "Malm", "Duken"); err != nil {
			return TierPoint{}, err
		}
		thin += time.Since(t0)

		t0 = time.Now()
		if _, err := logic.Invoke("Compare", []any{aMap, bMap}); err != nil {
			return TierPoint{}, err
		}
		offloaded += time.Since(t0)
	}
	return TierPoint{Thin: thin / rounds, Offloaded: offloaded / rounds}, nil
}

// pullAllPolicy pulls every movable logic dependency unconditionally.
type pullAllPolicy struct{}

func (pullAllPolicy) Decide(desc *core.Descriptor, ctx core.PolicyContext) core.Placement {
	out := core.Placement{Reasons: map[string]string{}}
	for _, dep := range desc.Dependencies {
		if dep.Tier == core.TierLogic && dep.Movable {
			out.PullLogic = append(out.PullLogic, dep.Service)
			out.Reasons[dep.Service] = "forced by ablation"
		}
	}
	return out
}

// RendererPoint is one row of the renderer ablation.
type RendererPoint struct {
	Renderer string
	PerView  time.Duration
	Bytes    int
}

// RunRendererAblation times rendering the shop UI with each engine —
// the §3.3 claim that one abstract description serves all platforms,
// quantified.
func RunRendererAblation(cfg Config) ([]RendererPoint, error) {
	cfg = cfg.withDefaults()
	desc := shop.New().App().Descriptor.UI
	reg := render.NewRegistry()
	profiles := map[string]device.Profile{
		"tree": device.SonyEricssonM600i(),
		"text": device.Nokia9300i(),
		"html": device.IPhone(),
	}
	fmt.Fprintln(cfg.Out, "Ablation: rendering the same abstract UI with each engine")
	fmt.Fprintf(cfg.Out, "%-8s %14s %12s\n", "engine", "render time", "output size")

	const rounds = 200
	var out []RendererPoint
	for _, name := range []string{"tree", "text", "html"} {
		engine, ok := reg.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("bench: engine %s missing", name)
		}
		view, err := engine.Render(desc, profiles[name])
		if err != nil {
			return nil, err
		}
		var rendered string
		t0 := time.Now()
		for i := 0; i < rounds; i++ {
			rendered = view.Render()
		}
		per := time.Since(t0) / rounds
		out = append(out, RendererPoint{Renderer: name, PerView: per, Bytes: len(rendered)})
		fmt.Fprintf(cfg.Out, "%-8s %14s %12d\n", name, fmtDur(per), len(rendered))
		_ = view.Close()
	}
	fmt.Fprintln(cfg.Out)
	return out, nil
}

// SmartProxyPoint is one row of the smart-proxy ablation.
type SmartProxyPoint struct {
	Mode string
	Per  time.Duration
}

// RunSmartProxyAblation compares a method served locally by smart proxy
// code against the same method served remotely, over a phone-class link
// — the §2.2 smart proxy benefit, quantified.
func RunSmartProxyAblation(cfg Config) ([]SmartProxyPoint, error) {
	cfg = cfg.withDefaults()
	link := netsim.WLAN11b

	svc := shop.New()
	screen, err := core.NewNode(core.NodeConfig{Name: "screen", Profile: device.Touchscreen()})
	if err != nil {
		return nil, err
	}
	defer screen.Close()
	if err := screen.RegisterApp(svc.App()); err != nil {
		return nil, err
	}

	proxyCode := remote.NewProxyCodeRegistry()
	if err := shop.RegisterProxyCode(proxyCode); err != nil {
		return nil, err
	}
	phone, err := core.NewNode(core.NodeConfig{
		Name: "phone", Profile: device.Nokia9300i(), ProxyCode: proxyCode, FreeMemoryKB: 8192,
	})
	if err != nil {
		return nil, err
	}
	defer phone.Close()

	fabric := netsim.NewFabric()
	l, err := fabric.Listen("screen")
	if err != nil {
		return nil, err
	}
	defer l.Close()
	screen.Serve(l)
	conn, err := fabric.Dial("screen", link)
	if err != nil {
		return nil, err
	}
	session, err := phone.Connect(conn)
	if err != nil {
		return nil, err
	}
	defer session.Close()

	app, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{
		Policy: pullAllPolicy{}, Trusted: true, SkipUI: true,
	})
	if err != nil {
		return nil, err
	}
	defer app.Release()
	logic := app.Deps[shop.LogicInterface]

	const rounds = 5
	measure := func(fn func() error) (time.Duration, error) {
		var total time.Duration
		for i := 0; i < rounds; i++ {
			t0 := time.Now()
			if err := fn(); err != nil {
				return 0, err
			}
			total += time.Since(t0)
		}
		return total / rounds, nil
	}

	local, err := measure(func() error {
		_, err := logic.Invoke("FormatPrice", []any{int64(19900)})
		return err
	})
	if err != nil {
		return nil, err
	}
	remoteDur, err := measure(func() error {
		_, err := logic.Invoke("Cheapest", []any{"beds"})
		return err
	})
	if err != nil {
		return nil, err
	}

	out := []SmartProxyPoint{
		{Mode: "local method (smart proxy)", Per: local},
		{Mode: "remote method (fallthrough)", Per: remoteDur},
	}
	fmt.Fprintln(cfg.Out, "Ablation: smart proxy local vs remote methods over 802.11b")
	for _, p := range out {
		fmt.Fprintf(cfg.Out, "%-30s %14s\n", p.Mode, fmtDur(p.Per))
	}
	fmt.Fprintln(cfg.Out)
	return out, nil
}

// BuildCostPoint is one row of the proxy-build ablation.
type BuildCostPoint struct {
	Methods int
	Build   time.Duration
}

// RunBuildCostAblation measures proxy build time against interface
// size on the Nokia profile — quantifying the paper's §4.2 observation
// that "the time is not primarily influenced by the size of the
// service interface".
func RunBuildCostAblation(cfg Config) ([]BuildCostPoint, error) {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "Ablation: proxy build time vs interface size (Nokia 9300i)")
	fmt.Fprintf(cfg.Out, "%-10s %14s\n", "methods", "build time")
	var out []BuildCostPoint
	for _, methods := range []int{1, 4, 16, 64} {
		sim := devsim.Nokia9300i()
		sim.CPU().SetJitter(0)
		start := time.Now()
		sim.BuildProxy(methods)
		took := time.Since(start)
		out = append(out, BuildCostPoint{Methods: methods, Build: took})
		fmt.Fprintf(cfg.Out, "%-10d %14s\n", methods, fmtDur(took))
	}
	// Sanity: a 64x bigger interface must cost well under 2x.
	if len(out) == 4 && out[3].Build > out[0].Build*2 {
		fmt.Fprintln(cfg.Out, "WARNING: build time scales with interface size; the paper says it should not")
	}
	fmt.Fprintln(cfg.Out)
	return out, nil
}
