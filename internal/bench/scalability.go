package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/devsim"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/service"
)

// echoInterface is the service invoked by the scalability workloads.
const echoInterface = "bench.Echo"

// newEchoService builds the invoked service: one small method, like the
// paper's "service invocation of the same service method every 100 ms".
func newEchoService() *remote.MethodTable {
	return remote.NewService(echoInterface).
		Method("Work", []string{"int"}, "int", func(args []any) (any, error) {
			return args[0], nil
		})
}

// scalabilityServer is a provider node with a cost-simulated CPU.
type scalabilityServer struct {
	fw   *module.Framework
	peer *remote.Peer
	l    *netsim.Listener
}

func newScalabilityServer(fabric *netsim.Fabric, sim *devsim.Device) (*scalabilityServer, error) {
	fw := module.NewFramework(module.Config{Name: "server"})
	peer, err := remote.NewPeer(remote.Config{Framework: fw, Device: sim})
	if err != nil {
		_ = fw.Shutdown()
		return nil, err
	}
	if _, err := fw.Registry().Register([]string{echoInterface}, newEchoService(),
		service.Properties{remote.PropExported: true}, "bench"); err != nil {
		peer.Close()
		_ = fw.Shutdown()
		return nil, err
	}
	l, err := fabric.Listen("server")
	if err != nil {
		peer.Close()
		_ = fw.Shutdown()
		return nil, err
	}
	go func() { _ = peer.Serve(l) }()
	return &scalabilityServer{fw: fw, peer: peer, l: l}, nil
}

func (s *scalabilityServer) close() {
	_ = s.l.Close()
	s.peer.Close()
	_ = s.fw.Shutdown()
}

// MeasureServerLoad runs the Figure 3/4 workload for one client count:
// clients invoke the echo service every interval; after warmup, the
// invocation latencies of the last-started client are averaged over the
// window (the paper's "average invocation time of the last client
// instance, which is started when all other client instances are
// already running").
func MeasureServerLoad(serverSim *devsim.Device, link netsim.LinkProfile,
	clients int, interval, warmup, window time.Duration) (Point, error) {
	fabric := netsim.NewFabric()
	server, err := newScalabilityServer(fabric, serverSim)
	if err != nil {
		return Point{}, err
	}
	defer server.close()

	clientFW := module.NewFramework(module.Config{Name: "clients"})
	defer clientFW.Shutdown()
	clientPeer, err := remote.NewPeer(remote.Config{Framework: clientFW, Timeout: 30 * time.Second})
	if err != nil {
		return Point{}, err
	}
	defer clientPeer.Close()

	channels := make([]*remote.Channel, clients)
	for i := range channels {
		conn, err := fabric.Dial("server", link)
		if err != nil {
			return Point{}, err
		}
		ch, err := clientPeer.Connect(conn)
		if err != nil {
			return Point{}, fmt.Errorf("bench: connecting client %d: %w", i, err)
		}
		channels[i] = ch
	}
	defer func() {
		for _, ch := range channels {
			ch.Close()
		}
	}()
	info, ok := channels[0].FindRemoteService(echoInterface)
	if !ok {
		return Point{}, fmt.Errorf("bench: echo service not leased")
	}

	var (
		mu      sync.Mutex
		samples []time.Duration
	)
	measureFrom := time.Now().Add(warmup)
	measureTo := measureFrom.Add(window)
	done := make(chan struct{})
	var wg sync.WaitGroup

	for i, ch := range channels {
		wg.Add(1)
		go func(i int, ch *remote.Channel) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			// Stagger client phases across the interval so arrivals
			// spread like the paper's one-client-per-second ramp.
			startDelay := time.Duration(rng.Int63n(int64(interval)))
			timer := time.NewTimer(startDelay)
			select {
			case <-timer.C:
			case <-done:
				timer.Stop()
				return
			}
			last := i == len(channels)-1
			for {
				t0 := time.Now()
				_, err := ch.Invoke(info.ID, "Work", []any{int64(i)})
				if err != nil {
					return // channel closed at teardown
				}
				if last {
					if now := time.Now(); now.After(measureFrom) && now.Before(measureTo) {
						mu.Lock()
						samples = append(samples, now.Sub(t0))
						mu.Unlock()
					}
				}
				// Think time with jitter (deterministic per client).
				think := interval + time.Duration(rng.Int63n(int64(interval)/2)) - interval/4
				timer.Reset(think)
				select {
				case <-timer.C:
				case <-done:
					timer.Stop()
					return
				}
			}
		}(i, ch)
	}

	// Sample server busy-time at the window edges for utilization.
	time.Sleep(time.Until(measureFrom))
	busy0, _ := serverSim.CPU().Stats()
	time.Sleep(time.Until(measureTo) + 50*time.Millisecond)
	busy1, _ := serverSim.CPU().Stats()
	close(done)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(samples) == 0 {
		return Point{X: clients}, fmt.Errorf("bench: no samples at %d clients", clients)
	}
	p := summarize(clients, samples)
	capacity := float64(window) * float64(serverSim.CPU().Units())
	if capacity > 0 {
		p.Util = float64(busy1-busy0) / capacity
	}
	return p, nil
}

// RunFigure3 regenerates Figure 3: method invocation time with 1..128
// concurrent clients against a single P4-class server over 100 Mb/s
// Ethernet.
func RunFigure3(cfg Config) (*Series, error) {
	cfg = cfg.withDefaults()
	counts := []int{1, 2, 4, 8, 16, 32, 64, 128}
	series := &Series{
		Title:     "Figure 3: invocation time vs concurrent clients (P4 server, 100 Mb/s)",
		XLabel:    "clients",
		PaperNote: "~1 ms at 1 client, rising below 2.5 ms at 128",
	}
	for _, n := range counts {
		p, err := MeasureServerLoad(devsim.DesktopP4(), netsim.Ethernet100,
			n, 100*time.Millisecond, cfg.Warmup, cfg.Window)
		if err != nil {
			return nil, err
		}
		series.Points = append(series.Points, p)
		fmt.Fprintf(cfg.Out, "  fig3: %4d clients -> %s (%d samples)\n", p.X, fmtDur(p.Avg), p.Count)
	}
	series.Print(cfg.Out)
	return series, nil
}

// RunFigure4 regenerates Figure 4: the same workload against a 4-core
// Opteron cluster node over Gigabit, clients spread over six client
// machines. With Config.Full the saturation points beyond the paper's
// plotted range (540, 600 clients — §4.3's knee) are included.
func RunFigure4(cfg Config) (*Series, error) {
	cfg = cfg.withDefaults()
	counts := []int{6, 12, 24, 48, 96, 192, 384}
	if cfg.Full {
		counts = append(counts, 540, 600)
	}
	series := &Series{
		Title:     "Figure 4: invocation time vs concurrent clients (Opteron node, 1 Gb/s, 6 client machines)",
		XLabel:    "clients",
		PaperNote: "~1-2.2 ms up to 384; 3.6 ms at 540; >42 ms at 600 (knee ~550)",
	}
	for _, n := range counts {
		p, err := MeasureServerLoad(devsim.OpteronNode(), netsim.Gigabit,
			n, 100*time.Millisecond, cfg.Warmup, cfg.Window)
		if err != nil {
			return nil, err
		}
		series.Points = append(series.Points, p)
		fmt.Fprintf(cfg.Out, "  fig4: %4d clients -> %s (%d samples)\n", p.X, fmtDur(p.Avg), p.Count)
	}
	series.Print(cfg.Out)
	return series, nil
}
