package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/devsim"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/service"
)

// phoneServiceCount is how many distinct services the provider
// registers for the Figure 5/6 sweep (the paper installs 1024).
const phoneServiceCount = 1024

// MeasurePhoneLoad runs the Figure 5/6 workload for one concurrency
// level: the phone holds n acquired services and invokes a method on
// every one of them each second; invocation latencies inside the
// measurement window are averaged. The returned baseline is the
// application-level ping RTT (the dotted line in the paper's figures).
//
// Proxy construction is deliberately excluded here — the figures
// measure steady-state invocation latency, and the phone-side
// per-invocation cost (marshalling, proxy dispatch) is applied through
// the devsim model exactly as a proxy invocation would.
func MeasurePhoneLoad(phoneSim *devsim.Device, link netsim.LinkProfile,
	n int, interval, warmup, window time.Duration) (Point, time.Duration, error) {
	fabric := netsim.NewFabric()

	serverFW := module.NewFramework(module.Config{Name: "server"})
	defer serverFW.Shutdown()
	serverPeer, err := remote.NewPeer(remote.Config{Framework: serverFW, Device: devsim.DesktopP4()})
	if err != nil {
		return Point{}, 0, err
	}
	defer serverPeer.Close()
	// 1024 distinct services, as in the paper's setup.
	echo := newEchoService()
	ids := make([]int64, 0, phoneServiceCount)
	for i := 0; i < phoneServiceCount; i++ {
		reg, err := serverFW.Registry().Register(
			[]string{fmt.Sprintf("bench.Svc%04d", i)}, echo,
			service.Properties{remote.PropExported: true}, "bench")
		if err != nil {
			return Point{}, 0, err
		}
		ids = append(ids, reg.Reference().ID())
	}
	l, err := fabric.Listen("server")
	if err != nil {
		return Point{}, 0, err
	}
	defer l.Close()
	go func() { _ = serverPeer.Serve(l) }()

	phoneFW := module.NewFramework(module.Config{Name: "phone"})
	defer phoneFW.Shutdown()
	phonePeer, err := remote.NewPeer(remote.Config{
		Framework: phoneFW,
		Device:    phoneSim,
		Timeout:   30 * time.Second,
	})
	if err != nil {
		return Point{}, 0, err
	}
	defer phonePeer.Close()

	conn, err := fabric.Dial("server", link)
	if err != nil {
		return Point{}, 0, err
	}
	ch, err := phonePeer.Connect(conn)
	if err != nil {
		return Point{}, 0, err
	}
	defer ch.Close()

	// Ping baseline (averaged over a few probes).
	var baseline time.Duration
	const probes = 5
	for i := 0; i < probes; i++ {
		rtt, err := ch.Ping()
		if err != nil {
			return Point{}, 0, err
		}
		baseline += rtt
	}
	baseline /= probes

	var (
		mu      sync.Mutex
		samples []time.Duration
	)
	measureFrom := time.Now().Add(warmup)
	measureTo := measureFrom.Add(window)
	done := make(chan struct{})
	var wg sync.WaitGroup

	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 77))
			svcID := ids[i]
			timer := time.NewTimer(time.Duration(rng.Int63n(int64(interval))))
			select {
			case <-timer.C:
			case <-done:
				timer.Stop()
				return
			}
			for {
				t0 := time.Now()
				if _, err := ch.Invoke(svcID, "Work", []any{int64(i)}); err != nil {
					return
				}
				if now := time.Now(); now.After(measureFrom) && now.Before(measureTo) {
					mu.Lock()
					samples = append(samples, now.Sub(t0))
					mu.Unlock()
				}
				think := interval + time.Duration(rng.Int63n(int64(interval)/4)) - interval/8
				timer.Reset(think)
				select {
				case <-timer.C:
				case <-done:
					timer.Stop()
					return
				}
			}
		}(i)
	}

	time.Sleep(time.Until(measureTo) + 50*time.Millisecond)
	close(done)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(samples) == 0 {
		return Point{X: n}, baseline, fmt.Errorf("bench: no samples at %d services", n)
	}
	return summarize(n, samples), baseline, nil
}

func runPhoneSeries(cfg Config, title, note string, sim func() *devsim.Device, link netsim.LinkProfile) (*Series, error) {
	cfg = cfg.withDefaults()
	counts := []int{5, 10, 15, 20, 25, 30, 35, 40}
	if !cfg.Full {
		counts = []int{5, 10, 20, 30, 40}
	}
	series := &Series{Title: title, XLabel: "services", PaperNote: note}
	for _, n := range counts {
		p, baseline, err := MeasurePhoneLoad(sim(), link, n, time.Second, cfg.Warmup, cfg.Window)
		if err != nil {
			return nil, err
		}
		series.Points = append(series.Points, p)
		series.Baseline = baseline
		fmt.Fprintf(cfg.Out, "  %s: %2d services -> %s (%d samples, ping %s)\n",
			link.Name, p.X, fmtDur(p.Avg), p.Count, fmtDur(baseline))
	}
	series.Print(cfg.Out)
	return series, nil
}

// RunFigure5 regenerates Figure 5: invocation time on a Nokia 9300i
// over 802.11b WLAN with 5..40 concurrently held services, each invoked
// once per second, against a server holding 1024 registered services.
func RunFigure5(cfg Config) (*Series, error) {
	return runPhoneSeries(cfg,
		"Figure 5: invocation time vs held services (Nokia 9300i, 802.11b WLAN)",
		"~100 ms average; below 150 ms at 40 services; ping baseline dotted",
		devsim.Nokia9300i, netsim.WLAN11b)
}

// RunFigure6 regenerates Figure 6: the same sweep on a Sony Ericsson
// M600i over Bluetooth 2.0 — comparable latencies despite ~4x lower
// nominal bandwidth, because the messages are small (§4.3).
func RunFigure6(cfg Config) (*Series, error) {
	return runPhoneSeries(cfg,
		"Figure 6: invocation time vs held services (SE M600i, Bluetooth 2.0)",
		"comparable to Figure 5: small messages are latency-bound, not bandwidth-bound",
		devsim.SonyEricssonM600i, netsim.BT20)
}
