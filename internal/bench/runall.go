package bench

import (
	"fmt"
	"time"
)

// Experiments maps experiment ids (as used by alfredo-bench -exp) to
// runners.
var Experiments = map[string]func(Config) error{
	"footprint":  func(c Config) error { _, err := RunFootprint(c); return err },
	"table1":     func(c Config) error { _, err := RunTable1(c); return err },
	"table2":     func(c Config) error { _, err := RunTable2(c); return err },
	"fig3":       func(c Config) error { _, err := RunFigure3(c); return err },
	"fig4":       func(c Config) error { _, err := RunFigure4(c); return err },
	"fig5":       func(c Config) error { _, err := RunFigure5(c); return err },
	"fig6":       func(c Config) error { _, err := RunFigure6(c); return err },
	"tiers":      func(c Config) error { _, err := RunTierAblation(c); return err },
	"renderers":  func(c Config) error { _, err := RunRendererAblation(c); return err },
	"smartproxy": func(c Config) error { _, err := RunSmartProxyAblation(c); return err },
	"buildcost":  func(c Config) error { _, err := RunBuildCostAblation(c); return err },
	"payload":    func(c Config) error { _, err := RunPayloadAblation(c); return err },
	"faults":     func(c Config) error { _, err := RunFaultAblation(c); return err },
	"throughput": func(c Config) error { _, err := RunThroughput(c); return err },
	"acquire":    func(c Config) error { _, err := RunAcquire(c); return err },
	"scale":      func(c Config) error { _, err := RunScale(c); return err },
	"placement":  func(c Config) error { _, err := RunPlacement(c); return err },
	"stream":     func(c Config) error { _, err := RunStream(c); return err },
	"obs":        RunObsDemo,
}

// Order lists experiment ids in report order.
var Order = []string{
	"footprint", "table1", "table2", "fig3", "fig4", "fig5", "fig6",
	"tiers", "renderers", "smartproxy", "buildcost", "payload", "faults",
	"throughput", "acquire", "scale", "placement", "stream", "obs",
}

// RunAll executes every experiment in order.
func RunAll(cfg Config) error {
	cfg = cfg.withDefaults()
	start := time.Now()
	for _, id := range Order {
		fmt.Fprintf(cfg.Out, "=== %s ===\n", id)
		if err := Experiments[id](cfg); err != nil {
			return fmt.Errorf("bench: experiment %s: %w", id, err)
		}
	}
	fmt.Fprintf(cfg.Out, "all experiments completed in %v\n", time.Since(start).Round(time.Second))
	return nil
}
