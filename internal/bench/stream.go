package bench

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/remote"
)

// StreamHOL is the head-of-line half of the stream experiment: invoke
// latency on a quiet channel vs the same channel carrying a saturating
// bulk stream. The priority gate (control > invoke > stream bulk) is
// what keeps Ratio near 1.
type StreamHOL struct {
	QuietP50  time.Duration `json:"quiet_p50_ns"`
	QuietP99  time.Duration `json:"quiet_p99_ns"`
	LoadedP50 time.Duration `json:"loaded_p50_ns"`
	LoadedP99 time.Duration `json:"loaded_p99_ns"`
	// BulkMBps is the bulk stream's goodput while invokes were measured
	// — proof the stream actually saturated the send path.
	BulkMBps float64 `json:"bulk_mbps"`
	// Ratio is LoadedP99/QuietP99.
	Ratio float64 `json:"p99_ratio"`
}

// StreamFanoutPoint is one subscriber-count cell of the broadcast
// fan-out sweep.
type StreamFanoutPoint struct {
	Subscribers int           `json:"subscribers"`
	Published   int64         `json:"published"`
	Delivered   int64         `json:"delivered"`
	Coalesced   int64         `json:"coalesced"`
	// Encodes counts payload-segment encodes on the hub; encode-once
	// means it tracks Published (segments per message), not Delivered.
	Encodes int64         `json:"encodes"`
	P50     time.Duration `json:"delivery_p50_ns"`
	P99     time.Duration `json:"delivery_p99_ns"`
}

// StreamFaults is the reliability half: a credited reliable stream
// driven across repeated link partitions must deliver every chunk.
type StreamFaults struct {
	Sent       int64 `json:"sent"`
	Delivered  int64 `json:"delivered"`
	Partitions int   `json:"partitions"`
}

// StreamReport is the full -exp stream result, also emitted as
// BENCH_stream.json when Config.JSONDir is set.
type StreamReport struct {
	HeadOfLine StreamHOL           `json:"head_of_line"`
	Fanout     []StreamFanoutPoint `json:"fanout"`
	Faults     StreamFaults        `json:"faults"`
}

// streamPayload lays a sequence number and send timestamp at the head
// of an n-byte chunk so collectors can compute delivery latency.
func streamPayload(seq int64, now time.Time, n int) []byte {
	if n < 16 {
		n = 16
	}
	p := make([]byte, n)
	binary.BigEndian.PutUint64(p[0:8], uint64(seq))
	binary.BigEndian.PutUint64(p[8:16], uint64(now.UnixNano()))
	return p
}

// quantileDur picks the q-quantile of samples (same convention as
// summarize, which stops at p95; the stream gates are on p99).
func quantileDur(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(q*float64(len(sorted)-1))]
}

// RunStream measures the prioritized stream mux end to end: head-of-line
// protection for invokes under a saturating bulk stream, broadcast
// fan-out latency vs subscriber count with encode-once accounting, and
// lossless reliable delivery across link partitions.
func RunStream(cfg Config) (*StreamReport, error) {
	cfg = cfg.withDefaults()
	rep := &StreamReport{}

	hol, err := measureStreamHOL(cfg)
	if err != nil {
		return nil, err
	}
	rep.HeadOfLine = *hol
	fmt.Fprintln(cfg.Out, "Invoke latency with vs without a saturating bulk stream (in-proc Gigabit)")
	fmt.Fprintf(cfg.Out, "%-10s %10s %10s\n", "", "p50", "p99")
	fmt.Fprintf(cfg.Out, "%-10s %10s %10s\n", "quiet", fmtDur(hol.QuietP50), fmtDur(hol.QuietP99))
	fmt.Fprintf(cfg.Out, "%-10s %10s %10s   (bulk %.1f MB/s, p99 ratio %.2fx)\n",
		"loaded", fmtDur(hol.LoadedP50), fmtDur(hol.LoadedP99), hol.BulkMBps, hol.Ratio)
	fmt.Fprintln(cfg.Out)

	subs := []int{1, 10, 100, 1000}
	if cfg.Full {
		subs = append(subs, 10000)
	}
	fmt.Fprintln(cfg.Out, "Broadcast fan-out: delivery latency vs subscribers (encode-once hub)")
	fmt.Fprintf(cfg.Out, "%-12s %10s %10s %10s %10s %10s\n",
		"subscribers", "delivered", "coalesced", "encodes", "p50", "p99")
	for _, n := range subs {
		p, err := measureStreamFanout(cfg, n)
		if err != nil {
			return nil, err
		}
		rep.Fanout = append(rep.Fanout, *p)
		fmt.Fprintf(cfg.Out, "%-12d %10d %10d %10d %10s %10s\n",
			n, p.Delivered, p.Coalesced, p.Encodes, fmtDur(p.P50), fmtDur(p.P99))
	}
	fmt.Fprintln(cfg.Out)

	faults, err := measureStreamFaults(cfg)
	if err != nil {
		return nil, err
	}
	rep.Faults = *faults
	fmt.Fprintf(cfg.Out, "Reliable stream across %d partitions: %d/%d chunks delivered\n\n",
		faults.Partitions, faults.Delivered, faults.Sent)

	if err := WriteBenchJSON(cfg, "stream", rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// measureStreamHOL samples invoke latency on the throughput pair twice:
// once quiet, once while a bulk stream writer saturates the same
// channel with 64 KB chunks.
func measureStreamHOL(cfg Config) (*StreamHOL, error) {
	env, err := NewThroughputEnv()
	if err != nil {
		return nil, err
	}
	defer env.Close()
	// The stream flows client->server, so the server-side channel needs
	// the drain handler (channel-level registration works for streams
	// opened after it).
	for _, sc := range env.serverPeer.Channels() {
		sc.HandleStreams(func(r *remote.StreamReader) {
			for {
				if _, err := r.Next(); err != nil {
					return
				}
			}
		})
	}

	window := cfg.Window / 3
	if window < 300*time.Millisecond {
		window = 300 * time.Millisecond
	}
	sample := func() ([]time.Duration, error) {
		var lat []time.Duration
		args := []any{int64(1)}
		deadline := time.Now().Add(window)
		for time.Now().Before(deadline) {
			start := time.Now()
			if _, err := env.Ch.Invoke(env.SvcID, "Work", args); err != nil {
				return nil, err
			}
			lat = append(lat, time.Since(start))
		}
		return lat, nil
	}

	quiet, err := sample()
	if err != nil {
		return nil, err
	}

	w, err := env.Ch.OpenStream("bench-bulk", nil)
	if err != nil {
		return nil, err
	}
	var bulkBytes atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		chunk := make([]byte, 64<<10)
		for {
			select {
			case <-stop:
				return
			default:
			}
			n, err := w.Write(chunk)
			if err != nil {
				return
			}
			bulkBytes.Add(int64(n))
		}
	}()
	bulkStart := time.Now()
	loaded, err := sample()
	bulkDur := time.Since(bulkStart)
	close(stop)
	wg.Wait()
	_ = w.Close()
	if err != nil {
		return nil, err
	}

	hol := &StreamHOL{
		QuietP50:  quantileDur(quiet, 0.50),
		QuietP99:  quantileDur(quiet, 0.99),
		LoadedP50: quantileDur(loaded, 0.50),
		LoadedP99: quantileDur(loaded, 0.99),
		BulkMBps:  float64(bulkBytes.Load()) / (1 << 20) / bulkDur.Seconds(),
	}
	if hol.QuietP99 > 0 {
		hol.Ratio = float64(hol.LoadedP99) / float64(hol.QuietP99)
	}
	return hol, nil
}

// fanStats collects delivery latencies across every subscriber of one
// fan-out point.
type fanStats struct {
	mu        sync.Mutex
	lat       []time.Duration
	delivered int64
}

func (fs *fanStats) handler(r *remote.StreamReader) {
	for {
		chunk, err := r.Next()
		if err != nil {
			return
		}
		if len(chunk) < 16 {
			continue
		}
		sent := int64(binary.BigEndian.Uint64(chunk[8:16]))
		d := time.Since(time.Unix(0, sent))
		fs.mu.Lock()
		fs.lat = append(fs.lat, d)
		fs.delivered++
		fs.mu.Unlock()
	}
}

func (fs *fanStats) count() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.delivered
}

// measureStreamFanout publishes a paced message train through a
// Broadcaster to n subscribers spread over up to 32 channels and
// reports delivery latency plus the hub's encode/coalesce accounting.
func measureStreamFanout(cfg Config, n int) (*StreamFanoutPoint, error) {
	serverFW := module.NewFramework(module.Config{Name: "bcast-server"})
	defer func() { _ = serverFW.Shutdown() }()
	serverPeer, err := remote.NewPeer(remote.Config{Framework: serverFW, Timeout: 30 * time.Second})
	if err != nil {
		return nil, err
	}
	defer serverPeer.Close()
	fabric := netsim.NewFabric()
	l, err := fabric.Listen("bcast-server")
	if err != nil {
		return nil, err
	}
	defer func() { _ = l.Close() }()
	go func() { _ = serverPeer.Serve(l) }()

	clientFW := module.NewFramework(module.Config{Name: "bcast-client"})
	defer func() { _ = clientFW.Shutdown() }()
	clientPeer, err := remote.NewPeer(remote.Config{Framework: clientFW, Timeout: 30 * time.Second})
	if err != nil {
		return nil, err
	}
	defer clientPeer.Close()

	stats := &fanStats{}
	conns := n
	if conns > 32 {
		conns = 32
	}
	for i := 0; i < conns; i++ {
		conn, err := fabric.Dial("bcast-server", netsim.Gigabit)
		if err != nil {
			return nil, err
		}
		ch, err := clientPeer.Connect(conn)
		if err != nil {
			return nil, err
		}
		ch.HandleStreams(stats.handler)
	}
	// Wait for the server side of every channel before subscribing.
	deadline := time.Now().Add(10 * time.Second)
	for len(serverPeer.Channels()) < conns {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: only %d/%d broadcast channels up", len(serverPeer.Channels()), conns)
		}
		time.Sleep(time.Millisecond)
	}

	hub := obs.NewHub()
	b := remote.NewBroadcaster("bench-cards", remote.BroadcasterConfig{Obs: hub})
	defer b.Close()
	serverChans := serverPeer.Channels()
	for i := 0; i < n; i++ {
		if _, err := b.Subscribe(serverChans[i%len(serverChans)], nil); err != nil {
			return nil, err
		}
	}

	const msgs = 40
	const payloadBytes = 256
	// Pace with the fan-out degree so each publish drains before the
	// next: the point then measures per-message fan-out latency, not
	// backlog from an unsustainable publish rate.
	interval := 3*time.Millisecond + time.Duration(n)*20*time.Microsecond
	for i := 0; i < msgs; i++ {
		b.Publish("card-0", streamPayload(int64(i), time.Now(), payloadBytes))
		time.Sleep(interval)
	}
	// Fast consumers on the in-proc fabric drain everything; coalescing
	// only engages if the host stalls, and then delivered < n*msgs.
	want := int64(n) * msgs
	deadline = time.Now().Add(10 * time.Second)
	for stats.count() < want && time.Now().After(deadline) == false {
		time.Sleep(2 * time.Millisecond)
		m := hub.Metrics
		if stats.count()+m.Counter("alfredo_remote_broadcast_coalesced_total", "stream", "bench-cards").Value()+
			m.Counter("alfredo_remote_broadcast_dropped_total", "stream", "bench-cards").Value() >= want {
			break
		}
	}

	m := hub.Metrics
	stats.mu.Lock()
	lat := append([]time.Duration(nil), stats.lat...)
	stats.mu.Unlock()
	return &StreamFanoutPoint{
		Subscribers: n,
		Published:   m.Counter("alfredo_remote_broadcast_published_total", "stream", "bench-cards").Value(),
		Delivered:   m.Counter("alfredo_remote_broadcast_delivered_total", "stream", "bench-cards").Value(),
		Coalesced:   m.Counter("alfredo_remote_broadcast_coalesced_total", "stream", "bench-cards").Value(),
		Encodes:     m.Counter("alfredo_remote_broadcast_encodes_total", "stream", "bench-cards").Value(),
		P50:         quantileDur(lat, 0.50),
		P99:         quantileDur(lat, 0.99),
	}, nil
}

// measureStreamFaults drives a reliable credited stream across a link
// that partitions twice mid-transfer and reports delivery accounting;
// the mux must ride the stall out without losing a chunk.
func measureStreamFaults(cfg Config) (*StreamFaults, error) {
	serverFW := module.NewFramework(module.Config{Name: "fault-server"})
	defer func() { _ = serverFW.Shutdown() }()
	serverPeer, err := remote.NewPeer(remote.Config{Framework: serverFW, Timeout: 30 * time.Second})
	if err != nil {
		return nil, err
	}
	defer serverPeer.Close()
	fabric := netsim.NewFabric()
	l, err := fabric.Listen("fault-server")
	if err != nil {
		return nil, err
	}
	defer func() { _ = l.Close() }()
	go func() { _ = serverPeer.Serve(l) }()

	clientFW := module.NewFramework(module.Config{Name: "fault-client"})
	defer func() { _ = clientFW.Shutdown() }()
	clientPeer, err := remote.NewPeer(remote.Config{Framework: clientFW, Timeout: 30 * time.Second})
	if err != nil {
		return nil, err
	}
	defer clientPeer.Close()

	var delivered atomic.Int64
	done := make(chan struct{})
	conn, err := fabric.Dial("fault-server", netsim.Gigabit)
	if err != nil {
		return nil, err
	}
	ch, err := clientPeer.Connect(conn)
	if err != nil {
		return nil, err
	}
	ch.HandleStreams(func(r *remote.StreamReader) {
		defer close(done)
		for {
			if _, err := r.Next(); err != nil {
				return
			}
			delivered.Add(1)
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for len(serverPeer.Channels()) == 0 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: fault-server channel never came up")
		}
		time.Sleep(time.Millisecond)
	}

	w, err := serverPeer.Channels()[0].OpenStream("fault-feed", nil)
	if err != nil {
		return nil, err
	}
	const chunks = 200
	rawConn := conn.(*netsim.Conn)
	partitions := 0
	for i := 0; i < chunks; i++ {
		if i == chunks/3 || i == 2*chunks/3 {
			rawConn.Partition(80 * time.Millisecond)
			partitions++
		}
		if _, err := w.Write(streamPayload(int64(i), time.Now(), 4<<10)); err != nil {
			return nil, fmt.Errorf("bench: fault stream write %d: %w", i, err)
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		return nil, fmt.Errorf("bench: fault stream reader never finished (%d/%d chunks)", delivered.Load(), chunks)
	}
	return &StreamFaults{Sent: chunks, Delivered: delivered.Load(), Partitions: partitions}, nil
}
