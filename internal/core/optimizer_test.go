package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
)

// optimizerPair builds a provider/phone pair whose link can be degraded
// at runtime.
func optimizerPair(t *testing.T) (*Session, *netsim.Conn) {
	t.Helper()
	provider, err := NewNode(NodeConfig{Name: "target", Profile: device.Notebook()})
	if err != nil {
		t.Fatal(err)
	}
	if err := provider.RegisterApp(counterApp()); err != nil {
		t.Fatal(err)
	}
	phone, err := NewNode(NodeConfig{Name: "phone", Profile: device.Nokia9300i()})
	if err != nil {
		t.Fatal(err)
	}

	fabric := netsim.NewFabric()
	l, err := fabric.Listen("target")
	if err != nil {
		t.Fatal(err)
	}
	provider.Serve(l)
	conn, err := fabric.Dial("target", netsim.Loopback)
	if err != nil {
		t.Fatal(err)
	}
	simConn, ok := conn.(*netsim.Conn)
	if !ok {
		t.Fatal("expected a netsim conn")
	}
	session, err := phone.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		session.Close()
		phone.Close()
		provider.Close()
		_ = l.Close()
	})
	return session, simConn
}

func TestOptimizerPullsLogicWhenLinkDegrades(t *testing.T) {
	session, conn := optimizerPair(t)
	app, err := session.Acquire("demo.Counter", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, pulled := app.dep("demo.Stats"); pulled {
		t.Fatal("logic pulled prematurely")
	}

	var mu sync.Mutex
	var decisions []time.Duration
	opt, err := app.StartOptimizer(OptimizerConfig{
		Interval:     20 * time.Millisecond,
		RTTThreshold: 20 * time.Millisecond,
		OnDecision: func(rtt time.Duration, pulled []string) {
			mu.Lock()
			decisions = append(decisions, rtt)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer opt.Stop()

	// Fast link: a few probe rounds must not pull anything.
	time.Sleep(80 * time.Millisecond)
	if _, pulled := app.dep("demo.Stats"); pulled {
		t.Fatal("logic pulled on a fast link")
	}

	// The user walks away from the access point: RTT jumps to ~60 ms.
	conn.SetLink(netsim.LinkProfile{Name: "degraded", Latency: 30 * time.Millisecond})

	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, pulled := app.dep("demo.Stats"); pulled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("optimizer never pulled the logic tier after degradation")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Invocations through the host now use the local proxy path.
	host := &sessionHost{app: app}
	if _, err := host.Invoke("demo.Stats", "Double", []any{int64(4)}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(decisions) == 0 {
		t.Error("OnDecision never fired")
	}
	reason := app.Placement.Reasons["demo.Stats"]
	if reason == "" {
		t.Error("placement reason not recorded")
	}
}

func TestPullDependencyValidation(t *testing.T) {
	session, _ := optimizerPair(t)
	app, err := session.Acquire("demo.Counter", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.PullDependency("no.Such"); !errors.Is(err, ErrNoSuchRemoteService) {
		t.Errorf("unknown dep = %v", err)
	}
	// Pulling twice is a no-op.
	if err := app.PullDependency("demo.Stats"); err != nil {
		t.Fatal(err)
	}
	if err := app.PullDependency("demo.Stats"); err != nil {
		t.Errorf("second pull = %v", err)
	}
	// Pinned or data-tier dependencies refuse to move.
	app2desc := app.Descriptor
	app2desc.Dependencies = append(app2desc.Dependencies, Dependency{
		Service: "demo.Pinned", Tier: TierLogic, Movable: false,
	})
	if err := app.PullDependency("demo.Pinned"); !errors.Is(err, ErrNotMovable) {
		t.Errorf("pinned dep = %v", err)
	}
}

func TestOptimizerStopIdempotent(t *testing.T) {
	session, _ := optimizerPair(t)
	app, err := session.Acquire("demo.Counter", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := app.StartOptimizer(OptimizerConfig{Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	opt.Stop()
	opt.Stop()
}
