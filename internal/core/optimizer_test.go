package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
)

// optimizerPair builds a provider/phone pair, on one virtual clock,
// whose link can be degraded at runtime.
func optimizerPair(t *testing.T) (*clock.Virtual, *Session, *netsim.Conn) {
	t.Helper()
	v := clock.NewVirtual(1)
	provider, err := NewNode(NodeConfig{Name: "target", Profile: device.Notebook(), Clock: v, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := provider.RegisterApp(counterApp()); err != nil {
		t.Fatal(err)
	}
	phone, err := NewNode(NodeConfig{Name: "phone", Profile: device.Nokia9300i(), Clock: v, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	fabric := netsim.NewFabric().WithClock(v).WithSeed(1)
	l, err := fabric.Listen("target")
	if err != nil {
		t.Fatal(err)
	}
	provider.Serve(l)
	var session *Session
	var simConn *netsim.Conn
	driveV(t, v, time.Minute, func() {
		conn, err := fabric.Dial("target", netsim.Loopback)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		sc, ok := conn.(*netsim.Conn)
		if !ok {
			t.Error("expected a netsim conn")
			return
		}
		s, err := phone.Connect(conn)
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		session, simConn = s, sc
	})
	if session == nil {
		t.FailNow()
	}
	t.Cleanup(func() {
		driveV(t, v, time.Minute, func() {
			session.Close()
			phone.Close()
			provider.Close()
		})
		_ = l.Close()
	})
	return v, session, simConn
}

func TestOptimizerPullsLogicWhenLinkDegrades(t *testing.T) {
	v, session, conn := optimizerPair(t)
	var app *Application
	driveV(t, v, time.Minute, func() {
		a, err := session.Acquire("demo.Counter", AcquireOptions{})
		if err != nil {
			t.Errorf("Acquire: %v", err)
			return
		}
		app = a
	})
	if app == nil {
		t.FailNow()
	}
	if _, pulled := app.dep("demo.Stats"); pulled {
		t.Fatal("logic pulled prematurely")
	}

	var mu sync.Mutex
	var decisions []time.Duration
	opt, err := app.StartOptimizer(OptimizerConfig{
		Interval:     20 * time.Millisecond,
		RTTThreshold: 20 * time.Millisecond,
		OnDecision: func(d Decision) {
			mu.Lock()
			decisions = append(decisions, d.RTT)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, opt.Stop)

	// Fast link: a few probe rounds must not pull anything. Advancing
	// virtual time runs the probe cadence exactly.
	v.Advance(80 * time.Millisecond)
	if _, pulled := app.dep("demo.Stats"); pulled {
		t.Fatal("logic pulled on a fast link")
	}

	// The user walks away from the access point: RTT jumps to ~60 ms.
	conn.SetLink(netsim.LinkProfile{Name: "degraded", Latency: 30 * time.Millisecond})

	if !v.WaitCond(3*time.Second, func() bool {
		_, pulled := app.dep("demo.Stats")
		return pulled
	}) {
		t.Fatal("optimizer never pulled the logic tier after degradation")
	}

	// Invocations through the host now use the local proxy path.
	host := &sessionHost{app: app}
	driveV(t, v, time.Minute, func() {
		if _, err := host.Invoke("demo.Stats", "Double", []any{int64(4)}); err != nil {
			t.Errorf("federated Double: %v", err)
		}
	})
	mu.Lock()
	defer mu.Unlock()
	if len(decisions) == 0 {
		t.Error("OnDecision never fired")
	}
	reason := app.Placement.Reasons["demo.Stats"]
	if reason == "" {
		t.Error("placement reason not recorded")
	}
}

// TestOptimizerHealthGate degrades the link exactly like the pull
// test, but with the device reporting overload above MaxLocalLoad: the
// optimizer must keep probing without pulling — shipping compute onto
// an overloaded device trades a slow link for a slower CPU. Once the
// injected score recovers below the gate, the next round pulls.
func TestOptimizerHealthGate(t *testing.T) {
	v, session, conn := optimizerPair(t)
	var app *Application
	driveV(t, v, time.Minute, func() {
		a, err := session.Acquire("demo.Counter", AcquireOptions{})
		if err != nil {
			t.Errorf("Acquire: %v", err)
			return
		}
		app = a
	})
	if app == nil {
		t.FailNow()
	}

	var overloadMilli atomic.Int64
	overloadMilli.Store(950) // above the 0.9 gate
	var rounds atomic.Int64
	opt, err := app.StartOptimizer(OptimizerConfig{
		Interval:     20 * time.Millisecond,
		RTTThreshold: 20 * time.Millisecond,
		MaxLocalLoad: 0.9,
		Health: func() obs.HealthScore {
			return obs.HealthScore{Overall: float64(overloadMilli.Load()) / 1000}
		},
		OnDecision: func(Decision) { rounds.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, opt.Stop)

	conn.SetLink(netsim.LinkProfile{Name: "degraded", Latency: 30 * time.Millisecond})

	// Several slow-link probe rounds under overload: the gate holds.
	before := rounds.Load()
	if !v.WaitCond(3*time.Second, func() bool { return rounds.Load() >= before+5 }) {
		t.Fatal("optimizer stopped probing under the health gate")
	}
	if _, pulled := app.dep("demo.Stats"); pulled {
		t.Fatal("logic pulled onto an overloaded device")
	}

	// The device recovers: the same slow link now justifies the pull.
	overloadMilli.Store(100)
	if !v.WaitCond(3*time.Second, func() bool {
		_, pulled := app.dep("demo.Stats")
		return pulled
	}) {
		t.Fatal("optimizer never pulled after the device recovered")
	}
}

func TestPullDependencyValidation(t *testing.T) {
	v, session, _ := optimizerPair(t)
	var app *Application
	driveV(t, v, time.Minute, func() {
		a, err := session.Acquire("demo.Counter", AcquireOptions{})
		if err != nil {
			t.Errorf("Acquire: %v", err)
			return
		}
		app = a
	})
	if app == nil {
		t.FailNow()
	}
	driveV(t, v, time.Minute, func() {
		if err := app.PullDependency("no.Such"); !errors.Is(err, ErrNoSuchRemoteService) {
			t.Errorf("unknown dep = %v", err)
		}
		// Pulling twice is a no-op.
		if err := app.PullDependency("demo.Stats"); err != nil {
			t.Errorf("first pull: %v", err)
			return
		}
		if err := app.PullDependency("demo.Stats"); err != nil {
			t.Errorf("second pull = %v", err)
		}
	})
	// Pinned or data-tier dependencies refuse to move.
	app2desc := app.Descriptor
	app2desc.Dependencies = append(app2desc.Dependencies, Dependency{
		Service: "demo.Pinned", Tier: TierLogic, Movable: false,
	})
	if err := app.PullDependency("demo.Pinned"); !errors.Is(err, ErrNotMovable) {
		t.Errorf("pinned dep = %v", err)
	}
}

func TestOptimizerStopIdempotent(t *testing.T) {
	v, session, _ := optimizerPair(t)
	var app *Application
	driveV(t, v, time.Minute, func() {
		a, err := session.Acquire("demo.Counter", AcquireOptions{})
		if err != nil {
			t.Errorf("Acquire: %v", err)
			return
		}
		app = a
	})
	if app == nil {
		t.FailNow()
	}
	opt, err := app.StartOptimizer(OptimizerConfig{Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	driveV(t, v, time.Minute, opt.Stop)
	opt.Stop()
}
