package core

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/script"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// TestPollingControllerEndToEnd exercises the §3.2 Controller shape the
// paper describes verbatim: "the Controller ... may periodically poll a
// certain service method provided by the remote device and react to its
// changes by ... changing the implementation of a control command of
// the UI."
func TestPollingControllerEndToEnd(t *testing.T) {
	var temperature atomic.Int64
	temperature.Store(20)

	sensor := remote.NewService("demo.Thermostat").
		Method("Read", nil, "int", func(args []any) (any, error) {
			return temperature.Load(), nil
		}).
		Method("SetTarget", []string{"int"}, "void", func(args []any) (any, error) {
			temperature.Store(args[0].(int64))
			return nil, nil
		})

	app := &App{
		Descriptor: &Descriptor{
			Service: "demo.Thermostat",
			UI: &ui.Description{
				Title: "Thermostat",
				Controls: []ui.Control{
					{ID: "reading", Kind: ui.KindLabel, Text: "Temperature"},
					{ID: "target", Kind: ui.KindRange, Min: 5, Max: 30, Value: 20},
					{ID: "alert", Kind: ui.KindLabel, Text: ""},
				},
			},
			Controller: &script.Program{
				Rules: []script.Rule{
					{
						Name: "poll-sensor",
						On: script.Trigger{Poll: &script.PollTrigger{
							Method: "Read", IntervalMs: 15, OnChange: true,
						}},
						Do: []script.Action{
							{SetControl: &script.SetControlAction{Control: "reading", Property: "value", Value: "result"}},
							{SetControl: &script.SetControlAction{Control: "alert", Property: "value",
								Value: "result"}},
						},
					},
					{
						Name: "alert-when-hot",
						On: script.Trigger{Poll: &script.PollTrigger{
							Method: "Read", IntervalMs: 15, OnChange: true,
						}},
						When: "result >= 28",
						Do: []script.Action{
							{SetControl: &script.SetControlAction{Control: "alert", Property: "text", Value: "'TOO HOT'"}},
						},
					},
					{
						Name: "set-target",
						On:   script.Trigger{UI: &script.UITrigger{Control: "target", Kind: ui.EventChange}},
						Do: []script.Action{
							{Invoke: &script.InvokeAction{Method: "SetTarget", Args: []string{"event.value"}}},
						},
					},
				},
			},
		},
		Service: sensor,
	}

	provider, err := NewNode(NodeConfig{Name: "thermostat", Profile: device.Touchscreen()})
	if err != nil {
		t.Fatal(err)
	}
	defer provider.Close()
	if err := provider.RegisterApp(app); err != nil {
		t.Fatal(err)
	}

	phone, err := NewNode(NodeConfig{Name: "phone", Profile: device.Nokia9300i()})
	if err != nil {
		t.Fatal(err)
	}
	defer phone.Close()

	fabric := netsim.NewFabric()
	l, _ := fabric.Listen("thermostat")
	defer l.Close()
	provider.Serve(l)
	conn, _ := fabric.Dial("thermostat", netsim.Loopback)
	session, err := phone.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()

	acquired, err := session.Acquire("demo.Thermostat", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// The poll loop populates the reading without any user interaction.
	waitProp(t, acquired, "reading", "value", int64(20))

	// A UI change drives SetTarget remotely; the next poll reflects it.
	if err := acquired.View.Inject(ui.Event{Control: "target", Kind: ui.EventChange, Value: int64(29)}); err != nil {
		t.Fatal(err)
	}
	waitProp(t, acquired, "reading", "value", int64(29))
	// The guarded alert rule fired, too.
	waitProp(t, acquired, "alert", "text", "TOO HOT")

	// Releasing the app stops the poll loops: the remote service sees
	// no further reads.
	acquired.Release()
	time.Sleep(40 * time.Millisecond)
	before := temperature.Load()
	time.Sleep(60 * time.Millisecond)
	if temperature.Load() != before {
		t.Error("state changed after release")
	}
}

func waitProp(t *testing.T, app *Application, control, prop string, want any) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, _ := app.View.Property(control, prop); v == want {
			return
		}
		if time.Now().After(deadline) {
			v, _ := app.View.Property(control, prop)
			t.Fatalf("%s.%s = %v, want %v (ctl err %v)", control, prop, v, want, app.Controller.LastError())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
