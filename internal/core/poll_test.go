package core

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/script"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/sim/leak"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// driveV runs fn on its own goroutine and steps the virtual clock until
// it returns — how a virtual-clock test waits out a blocking call
// (connect, acquire, release) whose progress depends on simulated time.
func driveV(t *testing.T, v *clock.Virtual, budget time.Duration, fn func()) {
	t.Helper()
	var done atomic.Bool
	go func() {
		defer done.Store(true)
		fn()
	}()
	if !v.WaitCond(budget, done.Load) {
		t.Fatalf("blocked call did not finish within %v of virtual time", budget)
	}
}

// TestPollingControllerEndToEnd exercises the §3.2 Controller shape the
// paper describes verbatim: "the Controller ... may periodically poll a
// certain service method provided by the remote device and react to its
// changes by ... changing the implementation of a control command of
// the UI." The whole stack — poll tickers, invocation timeouts, netsim
// delivery — runs on one virtual clock, so the poll cadence is exact
// simulated time rather than scheduler-dependent sleeps.
func TestPollingControllerEndToEnd(t *testing.T) {
	leak.CheckGoroutines(t)
	var temperature atomic.Int64
	temperature.Store(20)

	sensor := remote.NewService("demo.Thermostat").
		Method("Read", nil, "int", func(args []any) (any, error) {
			return temperature.Load(), nil
		}).
		Method("SetTarget", []string{"int"}, "void", func(args []any) (any, error) {
			temperature.Store(args[0].(int64))
			return nil, nil
		})

	app := &App{
		Descriptor: &Descriptor{
			Service: "demo.Thermostat",
			UI: &ui.Description{
				Title: "Thermostat",
				Controls: []ui.Control{
					{ID: "reading", Kind: ui.KindLabel, Text: "Temperature"},
					{ID: "target", Kind: ui.KindRange, Min: 5, Max: 30, Value: 20},
					{ID: "alert", Kind: ui.KindLabel, Text: ""},
				},
			},
			Controller: &script.Program{
				Rules: []script.Rule{
					{
						Name: "poll-sensor",
						On: script.Trigger{Poll: &script.PollTrigger{
							Method: "Read", IntervalMs: 15, OnChange: true,
						}},
						Do: []script.Action{
							{SetControl: &script.SetControlAction{Control: "reading", Property: "value", Value: "result"}},
							{SetControl: &script.SetControlAction{Control: "alert", Property: "value",
								Value: "result"}},
						},
					},
					{
						Name: "alert-when-hot",
						On: script.Trigger{Poll: &script.PollTrigger{
							Method: "Read", IntervalMs: 15, OnChange: true,
						}},
						When: "result >= 28",
						Do: []script.Action{
							{SetControl: &script.SetControlAction{Control: "alert", Property: "text", Value: "'TOO HOT'"}},
						},
					},
					{
						Name: "set-target",
						On:   script.Trigger{UI: &script.UITrigger{Control: "target", Kind: ui.EventChange}},
						Do: []script.Action{
							{Invoke: &script.InvokeAction{Method: "SetTarget", Args: []string{"event.value"}}},
						},
					},
				},
			},
		},
		Service: sensor,
	}

	v := clock.NewVirtual(1)
	provider, err := NewNode(NodeConfig{Name: "thermostat", Profile: device.Touchscreen(), Clock: v, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, func() { provider.Close() })
	if err := provider.RegisterApp(app); err != nil {
		t.Fatal(err)
	}

	phone, err := NewNode(NodeConfig{Name: "phone", Profile: device.Nokia9300i(), Clock: v, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, func() { phone.Close() })

	fabric := netsim.NewFabric().WithClock(v).WithSeed(1)
	l, _ := fabric.Listen("thermostat")
	defer l.Close()
	provider.Serve(l)

	var session *Session
	driveV(t, v, time.Minute, func() {
		conn, err := fabric.Dial("thermostat", netsim.Loopback)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		s, err := phone.Connect(conn)
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		session = s
	})
	if session == nil {
		t.FailNow()
	}
	defer driveV(t, v, time.Minute, func() { session.Close() })

	var acquired *Application
	driveV(t, v, time.Minute, func() {
		a, err := session.Acquire("demo.Thermostat", AcquireOptions{})
		if err != nil {
			t.Errorf("Acquire: %v", err)
			return
		}
		acquired = a
	})
	if acquired == nil {
		t.FailNow()
	}

	// The poll loop populates the reading without any user interaction.
	waitProp(t, v, acquired, "reading", "value", int64(20))

	// A UI change drives SetTarget remotely; the next poll reflects it.
	driveV(t, v, time.Minute, func() {
		if err := acquired.View.Inject(ui.Event{Control: "target", Kind: ui.EventChange, Value: int64(29)}); err != nil {
			t.Errorf("Inject: %v", err)
		}
	})
	waitProp(t, v, acquired, "reading", "value", int64(29))
	// The guarded alert rule fired, too.
	waitProp(t, v, acquired, "alert", "text", "TOO HOT")

	// Releasing the app stops the poll loops: advance well past several
	// poll intervals and assert the remote service sees no further reads.
	driveV(t, v, time.Minute, func() { acquired.Release() })
	v.Advance(40 * time.Millisecond)
	before := temperature.Load()
	v.Advance(60 * time.Millisecond)
	if temperature.Load() != before {
		t.Error("state changed after release")
	}
}

// waitProp drives the virtual clock until the rendered property reaches
// the wanted value — the clock-driven replacement for sleep-polling the
// view.
func waitProp(t *testing.T, v *clock.Virtual, app *Application, control, prop string, want any) {
	t.Helper()
	if v.WaitCond(2*time.Second, func() bool {
		got, _ := app.View.Property(control, prop)
		return got == want
	}) {
		return
	}
	got, _ := app.View.Property(control, prop)
	t.Fatalf("%s.%s = %v, want %v (ctl err %v)", control, prop, got, want, app.Controller.LastError())
}
