package core

import (
	"strconv"
	"time"

	"github.com/alfredo-mw/alfredo/internal/obs"
)

// Core-layer telemetry helpers. The hub comes from NodeConfig.Obs
// (defaulted in NewNode), so every counter below lands on the same
// registry the node's remote peer reports into.

func (n *Node) obsHub() *obs.Hub { return n.cfg.Obs }

func (s *Session) obsHub() *obs.Hub { return s.node.cfg.Obs }

// countSessionOpened/Closed keep the active-session gauge balanced:
// opened is counted only once the session is registered with the node,
// closed only from Session.Close (which is idempotent).
func (n *Node) countSessionOpened() {
	m := n.obsHub().Metrics
	m.Counter("alfredo_core_sessions_opened_total").Inc()
	m.Gauge("alfredo_core_sessions_active").Add(1)
}

func (n *Node) countSessionClosed() {
	m := n.obsHub().Metrics
	m.Counter("alfredo_core_sessions_closed_total").Inc()
	m.Gauge("alfredo_core_sessions_active").Add(-1)
}

// observeAcquire records a completed acquisition: total latency per
// app plus the phase breakdown of Tables 1 and 2, so the histogram
// view reproduces the paper's timing rows from live traffic.
func (s *Session) observeAcquire(app *Application) {
	m := s.obsHub().Metrics
	t := app.Timing
	m.Histogram("alfredo_core_acquire_seconds", "app", app.Interface).
		Observe(t.TotalStart() + t.Dependencies + t.RenderUI)
	phase := func(name string, d time.Duration) {
		m.Histogram("alfredo_core_acquire_phase_seconds", "phase", name).Observe(d)
	}
	phase("acquire_interface", t.AcquireInterface)
	phase("build_proxy", t.BuildProxy)
	phase("install_proxy", t.InstallProxy)
	phase("start_proxy", t.StartProxy)
	phase("dependencies", t.Dependencies)
	phase("render_ui", t.RenderUI)
}

// countPlacement records one tier-negotiation outcome.
func (s *Session) countPlacement(pulled int) {
	m := s.obsHub().Metrics
	m.Counter("alfredo_core_placement_decisions_total",
		"pulled", strconv.FormatBool(pulled > 0)).Inc()
	m.Counter("alfredo_core_tier_pulls_total").Add(int64(pulled))
}

// Live re-placement telemetry (DESIGN.md §13): the decision counters
// the fleet view shows, and the per-invoke dispatch accounting the sim
// harness checks the exactly-once cutover property against — every
// dependency invoke issued increments depInvokesFamily once and lands
// on exactly one placement, incrementing depDispatchFamily once.
const (
	placementPullsFamily  = "alfredo_core_placement_pulls_total"
	placementPushesFamily = "alfredo_core_placement_pushes_total"
	placementFlapsFamily  = "alfredo_core_placement_flaps_total"
	depInvokesFamily      = "alfredo_core_dep_invokes_total"
	depDispatchFamily     = "alfredo_core_dep_dispatch_total"
)

func (s *Session) countPull() { s.obsHub().Metrics.Counter(placementPullsFamily).Inc() }
func (s *Session) countPush() { s.obsHub().Metrics.Counter(placementPushesFamily).Inc() }
func (s *Session) countFlap() { s.obsHub().Metrics.Counter(placementFlapsFamily).Inc() }
