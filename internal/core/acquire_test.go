package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/remote"
)

// fetchTotal sums the client-side fetch-mode counters on hub — the
// number of interface fetches the session actually performed.
func fetchTotal(hub *obs.Hub) int64 {
	var n int64
	for _, mode := range []string{remote.FetchModeCold, remote.FetchModeWarm, remote.FetchModeDelta, remote.FetchModeLegacy} {
		n += hub.Metrics.Counter("alfredo_remote_fetch_mode_total", "mode", mode).Value()
	}
	return n
}

// Two goroutines acquiring the same service on one session must
// coalesce into a single fetch and share the resulting application —
// not race each other into double installs or spurious
// ErrAlreadyAcquired.
func TestConcurrentAcquireCoalesces(t *testing.T) {
	hub := obs.NewHub()
	// A link with real latency keeps the first acquisition in flight
	// long enough that the second call reliably lands inside it.
	slow := netsim.LinkProfile{Name: "slow", Latency: 20 * time.Millisecond}
	p := newTestPair(t, slow, NodeConfig{
		Name:       "phone",
		Profile:    device.Nokia9300i(),
		CacheBytes: 1 << 20,
		Obs:        hub,
	})

	const goroutines = 2
	apps := make([]*Application, goroutines)
	errs := make([]error, goroutines)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			apps[i], errs[i] = p.session.Acquire("demo.Counter", AcquireOptions{})
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: Acquire: %v", i, errs[i])
		}
		if apps[i] == nil {
			t.Fatalf("goroutine %d: nil application", i)
		}
	}
	if apps[0] != apps[1] {
		t.Fatalf("concurrent acquires returned distinct applications %p and %p", apps[0], apps[1])
	}
	if got := fetchTotal(hub); got != 1 {
		t.Fatalf("coalesced acquire performed %d fetches, want 1", got)
	}

	// A later sequential acquire is a duplicate, not a coalesced waiter.
	if _, err := p.session.Acquire("demo.Counter", AcquireOptions{}); !errors.Is(err, ErrAlreadyAcquired) {
		t.Fatalf("re-acquire after completion: got %v, want ErrAlreadyAcquired", err)
	}
}

// A second session from a cache-equipped phone re-leases an unchanged
// service warm: the manifest is exchanged, but no chunk moves.
func TestSessionWarmReacquire(t *testing.T) {
	provider, err := NewNode(NodeConfig{Name: "shop-screen", Profile: device.Notebook()})
	if err != nil {
		t.Fatal(err)
	}
	defer provider.Close()
	if err := provider.RegisterApp(counterApp()); err != nil {
		t.Fatal(err)
	}
	phone, err := NewNode(NodeConfig{
		Name:       "phone",
		Profile:    device.Nokia9300i(),
		CacheBytes: 1 << 20,
		Obs:        obs.NewHub(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer phone.Close()

	fabric := netsim.NewFabric()
	l, err := fabric.Listen("shop-screen")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	provider.Serve(l)

	lease := func() *Application {
		conn, err := fabric.Dial("shop-screen", netsim.Loopback)
		if err != nil {
			t.Fatal(err)
		}
		s, err := phone.Connect(conn)
		if err != nil {
			t.Fatal(err)
		}
		app, err := s.Acquire("demo.Counter", AcquireOptions{})
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		t.Cleanup(s.Close)
		return app
	}

	cold := lease()
	if cold.Fetch.Mode != remote.FetchModeCold {
		t.Fatalf("first lease mode = %q, want cold", cold.Fetch.Mode)
	}
	warm := lease()
	if warm.Fetch.Mode != remote.FetchModeWarm {
		t.Fatalf("second lease mode = %q, want warm", warm.Fetch.Mode)
	}
	if warm.Fetch.ChunksFetched != 0 {
		t.Fatalf("warm lease fetched %d chunks, want 0", warm.Fetch.ChunksFetched)
	}
	if warm.Fetch.BytesSaved != warm.Fetch.BytesTotal {
		t.Fatalf("warm lease saved %d of %d bytes", warm.Fetch.BytesSaved, warm.Fetch.BytesTotal)
	}
	if err := phone.ChunkCache().Validate(); err != nil {
		t.Fatalf("cache validation: %v", err)
	}
}
