package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
)

// Optimizer errors.
var (
	ErrOptimizerRunning = errors.New("core: optimizer already running")
	ErrNotMovable       = errors.New("core: dependency is not a movable logic tier")
)

// PullDependency moves one movable logic-tier dependency to the client
// at runtime: its proxy is fetched, installed and added to the
// application's dependency set, so subsequent controller invocations of
// that service run through it (locally, when smart proxy code is
// installed). It is the mechanism under the online optimizer and may
// also be called directly.
func (a *Application) PullDependency(service string) error {
	var dep *Dependency
	for i := range a.Descriptor.Dependencies {
		if a.Descriptor.Dependencies[i].Service == service {
			dep = &a.Descriptor.Dependencies[i]
			break
		}
	}
	if dep == nil {
		return fmt.Errorf("%w: %s not declared", ErrNoSuchRemoteService, service)
	}
	if dep.Tier != TierLogic || !dep.Movable {
		return fmt.Errorf("%w: %s", ErrNotMovable, service)
	}
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return ErrAlreadyAcquired
	}
	if _, dup := a.Deps[service]; dup {
		a.mu.Unlock()
		return nil // already local
	}
	a.mu.Unlock()

	info, ok := a.session.channel().FindRemoteService(service)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchRemoteService, service)
	}
	reply, err := a.session.channel().Fetch(info.ID)
	if err != nil {
		return err
	}
	_, proxy, err := a.session.channel().InstallProxy(reply)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.Deps[service] = proxy
	if a.Placement.Reasons == nil {
		a.Placement.Reasons = make(map[string]string)
	}
	a.Placement.PullLogic = append(a.Placement.PullLogic, service)
	a.Placement.Reasons[service] = "pulled at runtime by the online optimizer"
	a.mu.Unlock()
	return nil
}

// dep resolves a pulled dependency proxy under the application lock.
func (a *Application) dep(service string) (invoker interface {
	Invoke(method string, args []any) (any, error)
}, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.Deps[service]
	return d, ok
}

// OptimizerConfig tunes the online distribution optimizer.
type OptimizerConfig struct {
	// Interval between link probes (default 1s).
	Interval time.Duration
	// RTTThreshold above which movable logic is pulled in (default
	// DefaultRTTThreshold).
	RTTThreshold time.Duration
	// MaxLocalLoad gates pulls on the device's own health: when the
	// node's overall overload score (NodeConfig.Health) is at or above
	// this threshold, the optimizer skips pulling logic tiers in that
	// round — shipping compute onto an overloaded device trades a slow
	// link for a slower CPU. Zero disables the gate.
	MaxLocalLoad float64
	// Health overrides the health signal the MaxLocalLoad gate reads
	// (defaults to the session node's own HealthView). Tests inject
	// synthetic scores here.
	Health func() obs.HealthScore
	// OnDecision, when non-nil, is called after every probe with the
	// measured RTT and the dependencies pulled in response (empty when
	// none).
	OnDecision func(rtt time.Duration, pulled []string)
}

// Optimizer implements the paper's §7 future work: "an online
// optimization mechanism to customize service distribution at
// runtime". It periodically measures the link round-trip time and,
// when the link degrades past the threshold, pulls the application's
// movable logic-tier dependencies to the client mid-session —
// invocations transparently switch from remote to local execution.
type Optimizer struct {
	app *Application
	cfg OptimizerConfig

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// StartOptimizer attaches an optimizer to the application. Stop it
// before releasing the application.
func (a *Application) StartOptimizer(cfg OptimizerConfig) (*Optimizer, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.RTTThreshold <= 0 {
		cfg.RTTThreshold = DefaultRTTThreshold
	}
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return nil, ErrAlreadyAcquired
	}
	a.mu.Unlock()

	o := &Optimizer{app: a, cfg: cfg, stop: make(chan struct{})}
	o.wg.Add(1)
	go o.loop()
	return o, nil
}

func (o *Optimizer) loop() {
	defer o.wg.Done()
	// The probe cadence runs on the node's clock, so a simulated node
	// optimizes on simulated time.
	ticker := clock.Or(o.app.session.node.Clock()).NewTicker(o.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-o.stop:
			return
		case <-ticker.C:
		}
		rtt, err := o.app.session.Ping()
		if err != nil {
			return // channel gone; the session will clean up
		}
		var pulled []string
		if rtt >= o.cfg.RTTThreshold && !o.localOverloaded() {
			for _, dep := range o.app.Descriptor.Dependencies {
				if dep.Tier != TierLogic || !dep.Movable {
					continue
				}
				if _, already := o.app.dep(dep.Service); already {
					continue
				}
				if err := o.app.PullDependency(dep.Service); err == nil {
					pulled = append(pulled, dep.Service)
				}
			}
		}
		if o.cfg.OnDecision != nil {
			o.cfg.OnDecision(rtt, pulled)
		}
	}
}

// localOverloaded applies the MaxLocalLoad gate: true when the health
// signal (injected, else the node's own HealthView) scores at or above
// the threshold. With the gate disabled or no signal it reports false.
func (o *Optimizer) localOverloaded() bool {
	if o.cfg.MaxLocalLoad <= 0 {
		return false
	}
	if o.cfg.Health != nil {
		return o.cfg.Health().Overall >= o.cfg.MaxLocalLoad
	}
	return o.app.session.node.Health().Overloaded(o.cfg.MaxLocalLoad)
}

// Stop halts the optimizer and waits for its loop to exit.
func (o *Optimizer) Stop() {
	o.once.Do(func() { close(o.stop) })
	o.wg.Wait()
}
