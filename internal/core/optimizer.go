package core

import (
	"errors"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
)

// Optimizer errors.
var (
	ErrOptimizerRunning = errors.New("core: optimizer already running")
	ErrNotMovable       = errors.New("core: dependency is not a movable logic tier")
)

// Optimizer defaults.
const (
	// DefaultRTTAlpha is the EWMA weight of each new RTT probe.
	DefaultRTTAlpha = 0.5
	// DefaultMinDwellRounds sets the default minimum dwell to this many
	// probe intervals.
	DefaultMinDwellRounds = 10
	// DefaultPingRetryBudget bounds consecutive failed probes on a
	// plain (non-resilient) session before the optimizer exits.
	DefaultPingRetryBudget = 5
)

// OptimizerConfig tunes the online re-placement engine. The zero value
// probes every second with the default thresholds.
type OptimizerConfig struct {
	// Interval between probe rounds (default 1s).
	Interval time.Duration
	// RTTThreshold is the smoothed link RTT at or above which movable
	// logic is pulled to this node (default DefaultRTTThreshold).
	RTTThreshold time.Duration
	// PushRTT is the smoothed RTT at or below which pulled logic is
	// pushed back to the target (default RTTThreshold/4). Keeping it
	// well under RTTThreshold is the hysteresis band that prevents a
	// noisy link from flapping the placement.
	PushRTT time.Duration
	// RTTAlpha is the EWMA weight of each new probe, in (0, 1]
	// (default DefaultRTTAlpha; 1 disables smoothing).
	RTTAlpha float64
	// PullInvokeP99 pulls a dependency whose live windowed p99 of
	// remote invokes (per-service, from the obs plane) reaches it,
	// even while the raw link RTT looks fine — a target that answers
	// pings fast but serves slowly still justifies local execution.
	// Zero disables the latency signal.
	PullInvokeP99 time.Duration
	// MinDwell is the minimum time a dependency stays in a placement
	// before the optimizer reverses it (default DefaultMinDwellRounds
	// probe intervals, on the node's clock). A reversal demanded inside
	// the dwell window is a flap: it is suppressed and counted once per
	// dwell period on alfredo_core_placement_flaps_total, so a steady
	// system reads zero flaps. Descriptors may extend the dwell per
	// dependency (Dependency.MinDwellMs).
	MinDwell time.Duration
	// MaxLocalLoad gates pulls on the device's own health: when the
	// node's overall overload score (NodeConfig.Health) is at or above
	// this threshold, the optimizer skips pulling logic tiers in that
	// round — shipping compute onto an overloaded device trades a slow
	// link for a slower CPU. Zero disables the gate.
	MaxLocalLoad float64
	// PushLocalLoad pushes pulled logic back to the target when the
	// overload score reaches it — the inverse of MaxLocalLoad: the
	// device got busy after the pull. Zero disables the load signal.
	PushLocalLoad float64
	// PingRetryBudget bounds consecutive failed probes before a plain
	// session's optimizer exits (default DefaultPingRetryBudget). On a
	// resilient session the budget is the link's own recovery window
	// instead: rounds are skipped while the link can still reconnect.
	PingRetryBudget int
	// Health overrides the health signal the load gates read (defaults
	// to the session node's own HealthView). Tests inject synthetic
	// scores here.
	Health func() obs.HealthScore
	// OnDecision, when non-nil, is called after every probe round.
	OnDecision func(Decision)
}

// normalized fills the config defaults.
func (cfg OptimizerConfig) normalized() OptimizerConfig {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.RTTThreshold <= 0 {
		cfg.RTTThreshold = DefaultRTTThreshold
	}
	if cfg.PushRTT <= 0 || cfg.PushRTT >= cfg.RTTThreshold {
		cfg.PushRTT = cfg.RTTThreshold / 4
	}
	if cfg.RTTAlpha <= 0 || cfg.RTTAlpha > 1 {
		cfg.RTTAlpha = DefaultRTTAlpha
	}
	if cfg.MinDwell <= 0 {
		cfg.MinDwell = time.Duration(DefaultMinDwellRounds) * cfg.Interval
	}
	if cfg.PingRetryBudget <= 0 {
		cfg.PingRetryBudget = DefaultPingRetryBudget
	}
	return cfg
}

// Decision is one optimizer probe round: the signals it read and the
// placement moves it made.
type Decision struct {
	// RTT is the raw probe; SmoothedRTT is the EWMA the thresholds
	// compare against.
	RTT         time.Duration
	SmoothedRTT time.Duration
	// Health is the overall overload score read this round.
	Health float64
	// Pulled and Pushed list the dependencies moved this round.
	Pulled []string
	Pushed []string
	// Skipped marks a round whose probe failed (transient link blip):
	// no signals were read and nothing moved.
	Skipped bool
}

// Optimizer implements the paper's §7 future work: "an online
// optimization mechanism to customize service distribution at
// runtime" — bidirectionally. It periodically probes the link and
// folds the probe into an RTT EWMA, reads the per-service live invoke
// p99 and the node health score from the obs plane, and re-places
// movable logic-tier dependencies both ways: pulled to the client when
// the link degrades (or the target serves slowly), pushed back when
// the link recovers or the device itself becomes the bottleneck.
// Hysteresis — separate pull/push thresholds plus a minimum dwell on
// the clock seam — keeps the placement from flapping. Release stops
// attached optimizers automatically.
type Optimizer struct {
	app *Application
	cfg OptimizerConfig

	srtt     time.Duration
	failures int
	// flapAt remembers, per dependency, the move stamp a suppressed
	// reversal was already counted against, so one flappy dwell period
	// counts once, not once per probe round.
	flapAt map[string]time.Time

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// StartOptimizer attaches an optimizer to the application. It is
// registered on the application: Release (and Session.Close) stops it,
// so explicit Stop is only needed to end optimization early.
func (a *Application) StartOptimizer(cfg OptimizerConfig) (*Optimizer, error) {
	o := &Optimizer{app: a, cfg: cfg.normalized(), stop: make(chan struct{})}
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return nil, ErrAlreadyAcquired
	}
	a.optimizers = append(a.optimizers, o)
	a.mu.Unlock()
	o.wg.Add(1)
	go o.loop()
	return o, nil
}

func (o *Optimizer) loop() {
	defer o.wg.Done()
	// The probe cadence runs on the node's clock, so a simulated node
	// optimizes on simulated time.
	clk := clock.Or(o.app.session.node.Clock())
	ticker := clk.NewTicker(o.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-o.stop:
			return
		case <-ticker.C:
		}
		if o.app.isReleased() || o.app.session.isClosed() {
			return
		}
		rtt, err := o.app.session.Ping()
		if err != nil {
			if !o.probeFailed() {
				return
			}
			o.notify(Decision{Skipped: true})
			continue
		}
		o.failures = 0
		o.notify(o.decide(clk, rtt))
	}
}

// probeFailed absorbs one failed probe. It reports false — optimizer
// exits — only when the session is actually done: released, closed, or
// (for a resilient link) terminally down. A transient blip on a link
// that auto-reconnects is a skipped round, not the end of optimization
// for the rest of the session.
func (o *Optimizer) probeFailed() bool {
	if o.app.isReleased() || o.app.session.isClosed() {
		return false
	}
	if link := o.app.session.link; link != nil {
		switch link.State() {
		case remote.LinkDown, remote.LinkClosed:
			return false
		}
		// Reconnecting (or racing a channel swap): the link heals on
		// its own, so the failure does not consume the retry budget.
		return true
	}
	o.failures++
	return o.failures < o.cfg.PingRetryBudget
}

// decide runs one probe round: fold the probe into the EWMA, read the
// health score, and evaluate every movable dependency against the
// hysteresis bands.
func (o *Optimizer) decide(clk clock.Clock, rtt time.Duration) Decision {
	o.observeRTT(rtt)
	d := Decision{RTT: rtt, SmoothedRTT: o.srtt, Health: o.health()}
	now := clk.Now()
	for i := range o.app.Descriptor.Dependencies {
		dep := &o.app.Descriptor.Dependencies[i]
		if dep.Tier != TierLogic || !dep.Movable {
			continue
		}
		local, _ := o.app.DependencyLocal(dep.Service)
		if local {
			if o.shouldPush(d) {
				if !o.dwellOK(dep, now) {
					o.countFlap(dep)
				} else if o.move(dep.Service, false) {
					d.Pushed = append(d.Pushed, dep.Service)
				}
			}
			continue
		}
		if o.shouldPull(d, o.invokeP99(dep.Service)) {
			if !o.dwellOK(dep, now) {
				o.countFlap(dep)
			} else if o.move(dep.Service, true) {
				d.Pulled = append(d.Pulled, dep.Service)
			}
		}
	}
	return d
}

// shouldPull applies the pull band: link EWMA over the pull threshold,
// or the service's live invoke p99 over its own — and the device not
// overloaded (MaxLocalLoad gate).
func (o *Optimizer) shouldPull(d Decision, p99 time.Duration) bool {
	if o.cfg.MaxLocalLoad > 0 && d.Health >= o.cfg.MaxLocalLoad {
		return false
	}
	if d.SmoothedRTT >= o.cfg.RTTThreshold {
		return true
	}
	return o.cfg.PullInvokeP99 > 0 && p99 >= o.cfg.PullInvokeP99
}

// shouldPush applies the push band: the link recovered well past the
// hysteresis gap, or the device itself became the bottleneck.
func (o *Optimizer) shouldPush(d Decision) bool {
	if o.cfg.PushLocalLoad > 0 && d.Health >= o.cfg.PushLocalLoad {
		return true
	}
	return d.SmoothedRTT > 0 && d.SmoothedRTT <= o.cfg.PushRTT
}

// dwellOK enforces the minimum dwell: a dependency moved at t may not
// be reversed before t+dwell. The first-ever move is always allowed.
func (o *Optimizer) dwellOK(dep *Dependency, now time.Time) bool {
	stamp, moved := o.app.lastPlacementMove(dep.Service)
	if !moved {
		return true
	}
	dwell := o.cfg.MinDwell
	if d := time.Duration(dep.MinDwellMs) * time.Millisecond; d > dwell {
		dwell = d
	}
	return now.Sub(stamp.at) >= dwell
}

// countFlap records one suppressed reversal: the signals demanded the
// opposite placement inside the dwell window, and hysteresis held the
// line. Counted once per dependency per dwell period.
func (o *Optimizer) countFlap(dep *Dependency) {
	stamp, moved := o.app.lastPlacementMove(dep.Service)
	if !moved {
		return
	}
	if o.flapAt == nil {
		o.flapAt = make(map[string]time.Time)
	}
	if o.flapAt[dep.Service].Equal(stamp.at) {
		return
	}
	o.flapAt[dep.Service] = stamp.at
	o.app.session.countFlap()
}

// move performs one re-placement.
func (o *Optimizer) move(service string, toLocal bool) bool {
	reason := "pushed back to the target by the online optimizer"
	if toLocal {
		reason = "pulled at runtime by the online optimizer"
	}
	return o.app.placeDependency(service, toLocal, reason) == nil
}

// observeRTT folds one probe into the EWMA and publishes it, so the
// signal behind re-placement decisions is visible on /obs/fleet next
// to the decision counters.
func (o *Optimizer) observeRTT(rtt time.Duration) {
	if o.srtt == 0 {
		o.srtt = rtt
	} else {
		a := o.cfg.RTTAlpha
		o.srtt = time.Duration(a*float64(rtt) + (1-a)*float64(o.srtt))
	}
	o.app.session.obsHub().Metrics.Gauge("alfredo_core_optimizer_srtt_micros").
		Set(int64(o.srtt / time.Microsecond))
}

// invokeP99 reads the service's live windowed client-side invoke p99
// from the node's registry (the PR-7 sliding-window slots).
func (o *Optimizer) invokeP99(service string) time.Duration {
	return o.app.session.obsHub().Metrics.
		WindowQuantileLabeled("alfredo_remote_invoke_seconds", 0.99, "service", service)
}

// health reads the overall overload score: the injected signal when
// configured, the node's own HealthView otherwise.
func (o *Optimizer) health() float64 {
	if o.cfg.Health != nil {
		return o.cfg.Health().Overall
	}
	return o.app.session.node.Health().Score().Overall
}

func (o *Optimizer) notify(d Decision) {
	if o.cfg.OnDecision != nil {
		o.cfg.OnDecision(d)
	}
}

// signal requests stop without waiting for the loop to exit; a loop
// blocked mid-probe unblocks through the channel's own teardown.
func (o *Optimizer) signal() {
	o.once.Do(func() { close(o.stop) })
}

// Stop halts the optimizer and waits for its loop to exit. Idempotent,
// and safe after Release already stopped it.
func (o *Optimizer) Stop() {
	o.signal()
	o.wg.Wait()
}
