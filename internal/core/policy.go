package core

import (
	"fmt"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
)

// PolicyContext is what a distribution policy may consider when
// deciding tier placement (§3.2: "This decision may depend on the
// phone's capabilities as well as its current execution context").
type PolicyContext struct {
	// Profile is the client device profile.
	Profile device.Profile
	// FreeMemoryKB is the client's available memory.
	FreeMemoryKB int64
	// CPUMHz is the client's nominal CPU speed.
	CPUMHz int64
	// LinkRTT is the measured round-trip time to the target device.
	LinkRTT time.Duration
	// Trusted reports whether the target device is trusted; untrusted
	// targets never get logic pulled from them (§3.2: "In trusted
	// environments, this approach can be effective").
	Trusted bool
}

// Placement is a policy's verdict: which movable logic-tier
// dependencies to pull to the client, with per-dependency reasoning
// for diagnostics and the experiment reports.
type Placement struct {
	PullLogic []string
	Reasons   map[string]string
}

// Policy decides tier placement for one acquisition.
type Policy interface {
	Decide(desc *Descriptor, ctx PolicyContext) Placement
}

// ThinClientPolicy is the paper's default: only the presentation tier
// moves to the phone; every invocation crosses the network. It
// maximizes security and minimizes client load.
type ThinClientPolicy struct{}

var _ Policy = ThinClientPolicy{}

// Decide implements Policy.
func (ThinClientPolicy) Decide(desc *Descriptor, ctx PolicyContext) Placement {
	reasons := make(map[string]string, len(desc.Dependencies))
	for _, dep := range desc.Dependencies {
		reasons[dep.Service] = "thin-client policy keeps all logic on the target"
	}
	return Placement{Reasons: reasons}
}

// AdaptivePolicy implements the negotiation sketched in §3.2: pull
// movable logic-tier dependencies when the environment is trusted, the
// link is slow enough to make round trips hurt, and the client meets
// the dependency's resource requirements.
type AdaptivePolicy struct {
	// RTTThreshold is the link round-trip time above which logic is
	// worth pulling; zero selects DefaultRTTThreshold.
	RTTThreshold time.Duration
}

// DefaultRTTThreshold separates "wired" from "radio" links.
const DefaultRTTThreshold = 20 * time.Millisecond

var _ Policy = AdaptivePolicy{}

// Decide implements Policy.
func (p AdaptivePolicy) Decide(desc *Descriptor, ctx PolicyContext) Placement {
	threshold := p.RTTThreshold
	if threshold <= 0 {
		threshold = DefaultRTTThreshold
	}
	out := Placement{Reasons: make(map[string]string, len(desc.Dependencies))}
	for _, dep := range desc.Dependencies {
		switch {
		case dep.Tier != TierLogic:
			out.Reasons[dep.Service] = fmt.Sprintf("%s tier is not movable", dep.Tier)
		case !dep.Movable:
			out.Reasons[dep.Service] = "dependency is pinned to the target"
		case !ctx.Trusted:
			out.Reasons[dep.Service] = "environment untrusted; logic stays remote"
		case ctx.LinkRTT < threshold:
			out.Reasons[dep.Service] = fmt.Sprintf("link RTT %v below threshold %v; remote calls are cheap", ctx.LinkRTT, threshold)
		case !meetsRequirements(dep.Requirements, ctx):
			out.Reasons[dep.Service] = "client does not meet dependency requirements"
		default:
			out.Reasons[dep.Service] = fmt.Sprintf("pulled: trusted target, link RTT %v exceeds %v", ctx.LinkRTT, threshold)
			out.PullLogic = append(out.PullLogic, dep.Service)
		}
	}
	return out
}

func meetsRequirements(req Requirements, ctx PolicyContext) bool {
	if req.MinMemoryKB > 0 && ctx.FreeMemoryKB > 0 && ctx.FreeMemoryKB < req.MinMemoryKB {
		return false
	}
	if req.MinCPUMHz > 0 && ctx.CPUMHz > 0 && ctx.CPUMHz < req.MinCPUMHz {
		return false
	}
	if ok, _ := ctx.Profile.Satisfies(req.Capabilities); !ok {
		return false
	}
	return true
}
