package core

// HealthView is the placement-facing read surface over a node's health
// scorer: live overload scores derived from queue depth, admission
// rejections, windowed invoke p99 and heap pressure. The online
// optimizer consults it before re-placing tiers (pulling a logic tier
// onto an already-overloaded device makes the device the bottleneck the
// pull was meant to avoid), and the fleet plane ships the same scores
// host-ward as gauges. The direct prerequisite for ROADMAP #3.

import "github.com/alfredo-mw/alfredo/internal/obs"

// HealthView reads a node's most recent health score. The zero/nil
// view reports a permanently healthy node.
type HealthView struct {
	scorer *obs.HealthScorer
}

// Health returns the node's health view, or nil when health scoring
// was not enabled (NodeConfig.Health). A nil view is safe to read.
func (n *Node) Health() *HealthView {
	if n.health == nil {
		return nil
	}
	return &HealthView{scorer: n.health}
}

// Score returns the most recent health score. Nil-safe: a nil view
// returns the zero (fully healthy) score.
func (v *HealthView) Score() obs.HealthScore {
	if v == nil {
		return obs.HealthScore{}
	}
	return v.scorer.Last()
}

// Overloaded reports whether the node's overall overload score has
// reached threshold. Nil-safe (never overloaded).
func (v *HealthView) Overloaded(threshold float64) bool {
	if v == nil {
		return false
	}
	return v.scorer.Last().Overall >= threshold
}
