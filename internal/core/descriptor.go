// Package core implements AlfredO itself (paper §3): the service
// descriptor model, the multi-tier service architecture with negotiable
// tier placement, the AlfredOEngine that turns a shipped descriptor
// into a rendered View and an interpreted Controller, and the provider
// side that packages device functions as leasable services.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/alfredo-mw/alfredo/internal/script"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// Descriptor errors.
var (
	ErrBadDescriptor = errors.New("core: invalid service descriptor")
)

// Tier names the three tiers of the service architecture (§3.2).
type Tier string

// Service tiers. In the current implementation — exactly as in the
// paper — the data tier always resides on the target device and the
// presentation tier always on the client; logic-tier placement is
// negotiated.
const (
	TierPresentation Tier = "presentation"
	TierLogic        Tier = "logic"
	TierData         Tier = "data"
)

// Requirements bound what a client must offer before a service part
// may be placed on it (§3.2: "an abstract description of its
// requirements (e.g., other service dependencies, memory and CPU lower
// boundaries, etc.)").
type Requirements struct {
	MinMemoryKB  int64    `json:"minMemoryKB,omitempty"`
	MinCPUMHz    int64    `json:"minCPUMHz,omitempty"`
	Capabilities []string `json:"capabilities,omitempty"`
}

// Dependency names a service the main service depends on, its tier,
// and whether it may be moved to the client.
type Dependency struct {
	// Service is the interface name of the dependency.
	Service string `json:"service"`
	// Tier classifies the dependency.
	Tier Tier `json:"tier"`
	// Movable logic-tier dependencies may be pulled to the client
	// during tier negotiation.
	Movable bool `json:"movable,omitempty"`
	// MinDwellMs extends the re-placement optimizer's minimum dwell for
	// this dependency: after a placement move it stays put at least this
	// long before the opposite move (zero uses the optimizer's default).
	// Services whose logic tier is expensive to ship declare a longer
	// dwell here.
	MinDwellMs int64 `json:"minDwellMs,omitempty"`
	// Requirements gate movement.
	Requirements Requirements `json:"requirements,omitempty"`
}

// Descriptor is the AlfredO service descriptor (§3.2): the abstract UI,
// the controller program, the dependency list with per-dependency
// requirements, and simulation metadata.
type Descriptor struct {
	// Service is the main service interface name.
	Service string `json:"service"`
	// UI is the abstract user interface description.
	UI *ui.Description `json:"ui"`
	// Controller is the shippable rule program (may be nil for
	// render-only services).
	Controller *script.Program `json:"controller,omitempty"`
	// Dependencies lists the services this service depends on.
	Dependencies []Dependency `json:"dependencies,omitempty"`
	// Requirements apply to hosting the presentation tier itself.
	Requirements Requirements `json:"requirements,omitempty"`
	// StartWorkMs is the app-specific work the proxy activator performs
	// at start (devsim cost; behind the divergent "Start proxy bundle"
	// rows of Tables 1–2).
	StartWorkMs int64 `json:"startWorkMs,omitempty"`
}

// StartWork returns the declared start cost.
func (d *Descriptor) StartWork() time.Duration {
	return time.Duration(d.StartWorkMs) * time.Millisecond
}

// Validate checks the descriptor, including the embedded UI and
// controller program.
func (d *Descriptor) Validate() error {
	if d.Service == "" {
		return fmt.Errorf("%w: no service name", ErrBadDescriptor)
	}
	if d.UI == nil {
		return fmt.Errorf("%w: %s has no UI description", ErrBadDescriptor, d.Service)
	}
	if err := d.UI.Validate(); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBadDescriptor, d.Service, err)
	}
	if d.Controller != nil {
		if err := d.Controller.Validate(); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrBadDescriptor, d.Service, err)
		}
	}
	seen := make(map[string]bool, len(d.Dependencies))
	for _, dep := range d.Dependencies {
		if dep.Service == "" {
			return fmt.Errorf("%w: %s has a dependency without a service name", ErrBadDescriptor, d.Service)
		}
		if seen[dep.Service] {
			return fmt.Errorf("%w: %s lists dependency %s twice", ErrBadDescriptor, d.Service, dep.Service)
		}
		seen[dep.Service] = true
		switch dep.Tier {
		case TierPresentation, TierLogic, TierData:
		default:
			return fmt.Errorf("%w: %s dependency %s has tier %q", ErrBadDescriptor, d.Service, dep.Service, dep.Tier)
		}
		if dep.Tier == TierData && dep.Movable {
			// §3.2: "In the current implementation, the data tier always
			// resides on the target device". Automatic data-tier
			// distribution is the paper's future work; see package sync.
			return fmt.Errorf("%w: %s data-tier dependency %s cannot be movable", ErrBadDescriptor, d.Service, dep.Service)
		}
		if dep.MinDwellMs < 0 {
			return fmt.Errorf("%w: %s dependency %s has negative placement dwell", ErrBadDescriptor, d.Service, dep.Service)
		}
	}
	if d.StartWorkMs < 0 {
		return fmt.Errorf("%w: %s has negative start work", ErrBadDescriptor, d.Service)
	}
	return nil
}

// Marshal serializes the descriptor; this is what ships inside
// ServiceReply.Descriptor.
func (d *Descriptor) Marshal() ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	b, err := json.Marshal(d)
	if err != nil {
		return nil, fmt.Errorf("core: marshaling descriptor %s: %w", d.Service, err)
	}
	return b, nil
}

// UnmarshalDescriptor parses and validates a shipped descriptor.
func UnmarshalDescriptor(b []byte) (*Descriptor, error) {
	var d Descriptor
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDescriptor, err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}
