package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/service"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// TestFederatedScreen exercises §3.3's federation scenario end to end:
// the phone leases an app from one device and renders its view onto a
// *different* device's larger screen through a remote ScreenDevice
// proxy.
func TestFederatedScreen(t *testing.T) {
	fabric := netsim.NewFabric()

	// Device A: hosts the counter app.
	appHost, err := NewNode(NodeConfig{Name: "app-host", Profile: device.Notebook()})
	if err != nil {
		t.Fatal(err)
	}
	defer appHost.Close()
	if err := appHost.RegisterApp(counterApp()); err != nil {
		t.Fatal(err)
	}
	la, _ := fabric.Listen("app-host")
	defer la.Close()
	appHost.Serve(la)

	// Device B: a notebook exporting its screen.
	var mu sync.Mutex
	displayed := ""
	notebook, err := NewNode(NodeConfig{Name: "big-screen", Profile: device.Notebook()})
	if err != nil {
		t.Fatal(err)
	}
	defer notebook.Close()
	screenSvc := NewScreenService(func(content string) {
		mu.Lock()
		displayed = content
		mu.Unlock()
	}, nil)
	if _, err := notebook.Framework().Registry().Register(
		[]string{string(device.ScreenDevice)}, screenSvc,
		service.Properties{remote.PropExported: true}, "screen"); err != nil {
		t.Fatal(err)
	}
	lb, _ := fabric.Listen("big-screen")
	defer lb.Close()
	notebook.Serve(lb)

	// The phone connects to both devices.
	phone, err := NewNode(NodeConfig{Name: "phone", Profile: device.Nokia9300i()})
	if err != nil {
		t.Fatal(err)
	}
	defer phone.Close()

	connA, _ := fabric.Dial("app-host", netsim.Loopback)
	sessionA, err := phone.Connect(connA)
	if err != nil {
		t.Fatal(err)
	}
	defer sessionA.Close()
	app, err := sessionA.Acquire("demo.Counter", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}

	connB, _ := fabric.Dial("big-screen", netsim.Loopback)
	sessionB, err := phone.Connect(connB)
	if err != nil {
		t.Fatal(err)
	}
	defer sessionB.Close()
	info, ok := sessionB.Channel().FindRemoteService(string(device.ScreenDevice))
	if !ok {
		t.Fatal("screen device not leased")
	}
	reply, err := sessionB.Channel().Fetch(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, screenProxy, err := sessionB.Channel().InstallProxy(reply)
	if err != nil {
		t.Fatal(err)
	}

	// Mirror the phone's view onto the notebook's screen.
	mirror := MirrorView(app.View, screenProxy, 10*time.Millisecond)
	defer mirror.Stop()

	waitDisplayed := func(substr string) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			ok := strings.Contains(displayed, substr)
			mu.Unlock()
			if ok {
				return
			}
			if time.Now().After(deadline) {
				mu.Lock()
				got := displayed
				mu.Unlock()
				t.Fatalf("screen never showed %q; displayed:\n%s", substr, got)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitDisplayed("Counter")

	// Interacting on the phone updates the federated screen.
	if err := app.View.Inject(ui.Event{Control: "inc", Kind: ui.EventPress}); err != nil {
		t.Fatal(err)
	}
	waitDisplayed("1")
}

func TestMirrorStopsWhenScreenDies(t *testing.T) {
	// A mirror whose screen proxy fails must end, not spin.
	view := &fakeView{content: "x"}
	dead := deadInvoker{}
	m := MirrorView(view, dead, 5*time.Millisecond)
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	view.set("y")
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("mirror kept running after screen failure")
	}
	m.Stop() // still safe
}

type deadInvoker struct{}

func (deadInvoker) Invoke(string, []any) (any, error) {
	return nil, remote.ErrChannelClosed
}

// fakeView implements just enough of render.View for the mirror.
type fakeView struct {
	mu      sync.Mutex
	content string
}

func (f *fakeView) set(s string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.content = s
}
func (f *fakeView) Render() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.content
}

// TestFederatedInput drives an application's UI from a different
// device's hardware: a notebook keyboard injects events into the
// phone's acquired view over the network (§3.3 input federation).
func TestFederatedInput(t *testing.T) {
	fabric := netsim.NewFabric()

	appHost, err := NewNode(NodeConfig{Name: "app-host", Profile: device.Notebook()})
	if err != nil {
		t.Fatal(err)
	}
	defer appHost.Close()
	if err := appHost.RegisterApp(counterApp()); err != nil {
		t.Fatal(err)
	}
	la, _ := fabric.Listen("app-host")
	defer la.Close()
	appHost.Serve(la)

	// The phone acquires the app and exports its view's input path
	// under the KeyboardDevice capability.
	phone, err := NewNode(NodeConfig{Name: "phone", Profile: device.Nokia9300i()})
	if err != nil {
		t.Fatal(err)
	}
	defer phone.Close()
	connA, _ := fabric.Dial("app-host", netsim.Loopback)
	sessionA, err := phone.Connect(connA)
	if err != nil {
		t.Fatal(err)
	}
	defer sessionA.Close()
	app, err := sessionA.Acquire("demo.Counter", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}

	inputSvc := NewInputService(string(device.KeyboardDevice), app.View.Inject)
	if _, err := phone.Framework().Registry().Register(
		[]string{string(device.KeyboardDevice)}, inputSvc,
		service.Properties{remote.PropExported: true}, "phone"); err != nil {
		t.Fatal(err)
	}
	lp, _ := fabric.Listen("phone")
	defer lp.Close()
	phone.Serve(lp)

	// The notebook connects to the phone and presses the button through
	// the federated input path.
	notebook, err := NewNode(NodeConfig{Name: "kb-notebook", Profile: device.Notebook()})
	if err != nil {
		t.Fatal(err)
	}
	defer notebook.Close()
	connP, _ := fabric.Dial("phone", netsim.Loopback)
	sessionP, err := notebook.Connect(connP)
	if err != nil {
		t.Fatal(err)
	}
	defer sessionP.Close()
	info, ok := sessionP.Channel().FindRemoteService(string(device.KeyboardDevice))
	if !ok {
		t.Fatal("input service not leased")
	}
	reply, err := sessionP.Channel().Fetch(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, proxy, err := sessionP.Channel().InstallProxy(reply)
	if err != nil {
		t.Fatal(err)
	}

	input := NewRemoteInput(proxy)
	if err := input.Inject(ui.Event{Control: "inc", Kind: ui.EventPress}); err != nil {
		t.Fatal(err)
	}
	// The press traveled notebook -> phone -> (controller) -> app host
	// and back into the phone's view.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, _ := app.View.Property("display", "value"); v == int64(1) {
			break
		}
		if time.Now().After(deadline) {
			v, _ := app.View.Property("display", "value")
			t.Fatalf("federated press never landed; display = %v", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Bad events are rejected across the wire, not swallowed.
	if err := input.Inject(ui.Event{Control: "ghost", Kind: ui.EventPress}); err == nil {
		t.Error("invalid federated event accepted")
	}
}
