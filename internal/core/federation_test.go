package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/service"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// TestFederatedScreen exercises §3.3's federation scenario end to end:
// the phone leases an app from one device and renders its view onto a
// *different* device's larger screen through a remote ScreenDevice
// proxy.
func TestFederatedScreen(t *testing.T) {
	v := clock.NewVirtual(1)
	fabric := netsim.NewFabric().WithClock(v).WithSeed(1)

	// Device A: hosts the counter app.
	appHost, err := NewNode(NodeConfig{Name: "app-host", Profile: device.Notebook(), Clock: v, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, func() { appHost.Close() })
	if err := appHost.RegisterApp(counterApp()); err != nil {
		t.Fatal(err)
	}
	la, _ := fabric.Listen("app-host")
	defer la.Close()
	appHost.Serve(la)

	// Device B: a notebook exporting its screen.
	var mu sync.Mutex
	displayed := ""
	notebook, err := NewNode(NodeConfig{Name: "big-screen", Profile: device.Notebook(), Clock: v, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, func() { notebook.Close() })
	screenSvc := NewScreenService(func(content string) {
		mu.Lock()
		displayed = content
		mu.Unlock()
	}, nil)
	if _, err := notebook.Framework().Registry().Register(
		[]string{string(device.ScreenDevice)}, screenSvc,
		service.Properties{remote.PropExported: true}, "screen"); err != nil {
		t.Fatal(err)
	}
	lb, _ := fabric.Listen("big-screen")
	defer lb.Close()
	notebook.Serve(lb)

	// The phone connects to both devices.
	phone, err := NewNode(NodeConfig{Name: "phone", Profile: device.Nokia9300i(), Clock: v, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, func() { phone.Close() })

	var app *Application
	var screenProxy *remote.DynamicService
	driveV(t, v, time.Minute, func() {
		connA, err := fabric.Dial("app-host", netsim.Loopback)
		if err != nil {
			t.Errorf("Dial app-host: %v", err)
			return
		}
		sessionA, err := phone.Connect(connA)
		if err != nil {
			t.Errorf("Connect app-host: %v", err)
			return
		}
		app, err = sessionA.Acquire("demo.Counter", AcquireOptions{})
		if err != nil {
			t.Errorf("Acquire: %v", err)
			return
		}

		connB, err := fabric.Dial("big-screen", netsim.Loopback)
		if err != nil {
			t.Errorf("Dial big-screen: %v", err)
			return
		}
		sessionB, err := phone.Connect(connB)
		if err != nil {
			t.Errorf("Connect big-screen: %v", err)
			return
		}
		info, ok := sessionB.Channel().FindRemoteService(string(device.ScreenDevice))
		if !ok {
			t.Error("screen device not leased")
			return
		}
		reply, err := sessionB.Channel().Fetch(info.ID)
		if err != nil {
			t.Errorf("Fetch: %v", err)
			return
		}
		_, screenProxy, err = sessionB.Channel().InstallProxy(reply)
		if err != nil {
			t.Errorf("InstallProxy: %v", err)
		}
	})
	if app == nil || screenProxy == nil {
		t.FailNow()
	}

	// Mirror the phone's view onto the notebook's screen, on the same
	// virtual clock as everything else.
	mirror := MirrorViewOn(v, app.View, screenProxy, 10*time.Millisecond)
	defer driveV(t, v, time.Minute, mirror.Stop)

	waitDisplayed := func(substr string) {
		t.Helper()
		if !v.WaitCond(2*time.Second, func() bool {
			mu.Lock()
			defer mu.Unlock()
			return strings.Contains(displayed, substr)
		}) {
			mu.Lock()
			got := displayed
			mu.Unlock()
			t.Fatalf("screen never showed %q; displayed:\n%s", substr, got)
		}
	}
	waitDisplayed("Counter")

	// Interacting on the phone updates the federated screen.
	driveV(t, v, time.Minute, func() {
		if err := app.View.Inject(ui.Event{Control: "inc", Kind: ui.EventPress}); err != nil {
			t.Errorf("Inject: %v", err)
		}
	})
	waitDisplayed("1")
}

func TestMirrorStopsWhenScreenDies(t *testing.T) {
	// A mirror whose screen proxy fails must end, not spin.
	view := &fakeView{content: "x"}
	dead := deadInvoker{}
	m := MirrorView(view, dead, 5*time.Millisecond)
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	view.set("y")
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("mirror kept running after screen failure")
	}
	m.Stop() // still safe
}

type deadInvoker struct{}

func (deadInvoker) Invoke(string, []any) (any, error) {
	return nil, remote.ErrChannelClosed
}

// fakeView implements just enough of render.View for the mirror.
type fakeView struct {
	mu      sync.Mutex
	content string
}

func (f *fakeView) set(s string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.content = s
}
func (f *fakeView) Render() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.content
}

// TestFederatedInput drives an application's UI from a different
// device's hardware: a notebook keyboard injects events into the
// phone's acquired view over the network (§3.3 input federation).
func TestFederatedInput(t *testing.T) {
	v := clock.NewVirtual(1)
	fabric := netsim.NewFabric().WithClock(v).WithSeed(1)

	appHost, err := NewNode(NodeConfig{Name: "app-host", Profile: device.Notebook(), Clock: v, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, func() { appHost.Close() })
	if err := appHost.RegisterApp(counterApp()); err != nil {
		t.Fatal(err)
	}
	la, _ := fabric.Listen("app-host")
	defer la.Close()
	appHost.Serve(la)

	// The phone acquires the app and exports its view's input path
	// under the KeyboardDevice capability.
	phone, err := NewNode(NodeConfig{Name: "phone", Profile: device.Nokia9300i(), Clock: v, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, func() { phone.Close() })
	var sessionA *Session
	var app *Application
	driveV(t, v, time.Minute, func() {
		connA, err := fabric.Dial("app-host", netsim.Loopback)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		sessionA, err = phone.Connect(connA)
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		app, err = sessionA.Acquire("demo.Counter", AcquireOptions{})
		if err != nil {
			t.Errorf("Acquire: %v", err)
		}
	})
	if sessionA == nil || app == nil {
		t.FailNow()
	}
	defer driveV(t, v, time.Minute, func() { sessionA.Close() })

	inputSvc := NewInputService(string(device.KeyboardDevice), app.View.Inject)
	if _, err := phone.Framework().Registry().Register(
		[]string{string(device.KeyboardDevice)}, inputSvc,
		service.Properties{remote.PropExported: true}, "phone"); err != nil {
		t.Fatal(err)
	}
	lp, _ := fabric.Listen("phone")
	defer lp.Close()
	phone.Serve(lp)

	// The notebook connects to the phone and presses the button through
	// the federated input path.
	notebook, err := NewNode(NodeConfig{Name: "kb-notebook", Profile: device.Notebook(), Clock: v, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, func() { notebook.Close() })
	var input *RemoteInput
	driveV(t, v, time.Minute, func() {
		connP, err := fabric.Dial("phone", netsim.Loopback)
		if err != nil {
			t.Errorf("Dial phone: %v", err)
			return
		}
		sessionP, err := notebook.Connect(connP)
		if err != nil {
			t.Errorf("Connect phone: %v", err)
			return
		}
		info, ok := sessionP.Channel().FindRemoteService(string(device.KeyboardDevice))
		if !ok {
			t.Error("input service not leased")
			return
		}
		reply, err := sessionP.Channel().Fetch(info.ID)
		if err != nil {
			t.Errorf("Fetch: %v", err)
			return
		}
		_, proxy, err := sessionP.Channel().InstallProxy(reply)
		if err != nil {
			t.Errorf("InstallProxy: %v", err)
			return
		}
		input = NewRemoteInput(proxy)
	})
	if input == nil {
		t.FailNow()
	}
	driveV(t, v, time.Minute, func() {
		if err := input.Inject(ui.Event{Control: "inc", Kind: ui.EventPress}); err != nil {
			t.Errorf("Inject: %v", err)
		}
	})
	// The press traveled notebook -> phone -> (controller) -> app host
	// and back into the phone's view.
	if !v.WaitCond(2*time.Second, func() bool {
		val, _ := app.View.Property("display", "value")
		return val == int64(1)
	}) {
		val, _ := app.View.Property("display", "value")
		t.Fatalf("federated press never landed; display = %v", val)
	}
	// Bad events are rejected across the wire, not swallowed.
	driveV(t, v, time.Minute, func() {
		if err := input.Inject(ui.Event{Control: "ghost", Kind: ui.EventPress}); err == nil {
			t.Error("invalid federated event accepted")
		}
	})
}
