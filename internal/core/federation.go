package core

import (
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// ScreenMethodDisplay and ScreenMethodClear are the methods of the
// ScreenDevice service interface (§3.3).
const (
	ScreenMethodDisplay = "Display"
	ScreenMethodClear   = "Clear"
)

// NewScreenService builds an exportable implementation of the
// ScreenDevice capability interface: other devices can render onto this
// platform's display. display receives the full screen content; clear
// may be nil.
//
// This is the §3.3 federation scenario: "the phone may decide to use a
// notebook's screen with larger resolution; in this case, the
// ScreenDevice service would be implemented remotely by the notebook
// platform and invoked on the phone through a local proxy."
func NewScreenService(display func(content string), clear func()) *remote.MethodTable {
	return remote.NewService(string(device.ScreenDevice)).
		Method(ScreenMethodDisplay, []string{"string"}, "void", func(args []any) (any, error) {
			display(args[0].(string))
			return nil, nil
		}).
		Method(ScreenMethodClear, nil, "void", func(args []any) (any, error) {
			if clear != nil {
				clear()
			}
			return nil, nil
		})
}

// Mirror pushes a view's rendering to a (typically remote) ScreenDevice
// whenever it changes. Create with MirrorView, release with Stop.
type Mirror struct {
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// Renderable is the slice of render.View the mirror needs.
type Renderable interface {
	Render() string
}

// MirrorView polls the view at the given interval and ships changed
// renderings to the screen service (a local object or a remote proxy —
// the call is the same, which is the point of the exercise).
func MirrorView(view Renderable, screen remote.Invoker, interval time.Duration) *Mirror {
	return MirrorViewOn(nil, view, screen, interval)
}

// MirrorViewOn is MirrorView with an explicit time source, so a
// simulated deployment mirrors on simulated time. A nil clock selects
// the wall clock.
func MirrorViewOn(clk clock.Clock, view Renderable, screen remote.Invoker, interval time.Duration) *Mirror {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	m := &Mirror{stop: make(chan struct{})}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		ticker := clock.Or(clk).NewTicker(interval)
		defer ticker.Stop()
		last := ""
		for {
			select {
			case <-m.stop:
				return
			case <-ticker.C:
			}
			content := view.Render()
			if content == last {
				continue
			}
			if _, err := screen.Invoke(ScreenMethodDisplay, []any{content}); err != nil {
				return // screen gone; mirroring ends
			}
			last = content
		}
	}()
	return m
}

// Stop ends the mirroring and waits for the loop to exit.
func (m *Mirror) Stop() {
	m.once.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// InputMethodInject is the method of the remote input-device interface.
const InputMethodInject = "Inject"

// NewInputService exposes a view's input path as a remotely invocable
// service: another device's hardware can drive this application — the
// input half of §3.3's federation ("the UI can be partly on the local
// phone, partly on the target device, and partly on other external
// devices"). The interface name is the capability the remote hardware
// implements (e.g. device.KeyboardDevice).
func NewInputService(capability string, inject func(ev ui.Event) error) *remote.MethodTable {
	return remote.NewService(capability).
		Method(InputMethodInject, []string{"string", "string", "any"}, "void", func(args []any) (any, error) {
			ev := ui.Event{
				Control: args[0].(string),
				Kind:    ui.EventKind(args[1].(string)),
				Value:   args[2],
			}
			return nil, inject(ev)
		})
}

// RemoteInput wraps a proxy to a remote input service with a typed
// injection helper.
type RemoteInput struct {
	invoker remote.Invoker
}

// NewRemoteInput adapts a proxy (or any invoker) of an input service.
func NewRemoteInput(invoker remote.Invoker) *RemoteInput {
	return &RemoteInput{invoker: invoker}
}

// Inject delivers a user interaction to the remote view.
func (r *RemoteInput) Inject(ev ui.Event) error {
	_, err := r.invoker.Invoke(InputMethodInject, []any{ev.Control, string(ev.Kind), ev.Value})
	return err
}
