package core

import (
	"context"
	"fmt"
	"time"

	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/render"
)

// Session recovery: a resilient session (ConnectResilient) reacts to
// link state transitions. When the link drops, every application is
// degraded — its controls are disabled so the user sees an inert UI
// instead of one that wedges on a dead transport. When the link comes
// back, the session re-establishes each lease through the normal
// acquisition path (§3.2): fetch the interface again, synthesize and
// start a fresh proxy bundle, re-pull logic-tier dependencies, then
// re-enable the controls. The old channel's teardown has already
// uninstalled the proxies it tracked, so nothing leaks across the
// outage.

// onLinkState is the watcher registered by ConnectResilient. It runs
// sequentially on the link's monitor goroutine.
func (s *Session) onLinkState(st remote.LinkState, ch *remote.Channel) {
	switch st {
	case remote.LinkReconnecting, remote.LinkDown:
		s.degradeAll()
	case remote.LinkUp:
		s.mu.Lock()
		closed := s.closed
		if !closed {
			s.ch = ch
		}
		s.mu.Unlock()
		if closed {
			return
		}
		s.recoverAll()
		s.updateRemoteSubscriptions()
	}
}

// degradeAll marks every application degraded and disables its
// controls. Idempotent: the LinkDown transition after a failed
// reconnect re-runs it harmlessly.
func (s *Session) degradeAll() {
	for _, app := range s.Apps() {
		app.degrade()
	}
}

// recoverAll re-acquires every application on the fresh channel. An
// application whose service is no longer offered stays degraded.
func (s *Session) recoverAll() {
	for _, app := range s.Apps() {
		if err := s.recoverApp(app); err != nil {
			s.obsHub().Metrics.Counter("alfredo_core_recovery_failures_total").Inc()
			continue // stays degraded; next LinkUp retries
		}
	}
}

// degrade flips the application into the degraded state and disables
// its rendered controls.
func (a *Application) degrade() {
	a.mu.Lock()
	if a.done || a.degraded {
		a.mu.Unlock()
		return
	}
	a.degraded = true
	a.recovered = make(chan struct{})
	view := a.View
	a.mu.Unlock()
	a.session.obsHub().Metrics.Counter("alfredo_core_degrades_total").Inc()
	a.setControlsEnabled(view, false)
}

// recoverApp rebuilds the application's remote half on the session's
// current channel: resolve the service again, fetch, build/install/
// start a fresh proxy bundle, re-pull the logic-tier dependencies the
// placement decision had moved, then swap the pieces in and re-enable
// the UI.
func (s *Session) recoverApp(app *Application) (err error) {
	app.mu.Lock()
	if app.done || !app.degraded {
		app.mu.Unlock()
		return nil
	}
	desc := app.Descriptor
	pull := app.Placement.PullLogic
	app.mu.Unlock()

	hub := s.obsHub()
	start := time.Now()
	ctx, span := hub.Tracer.Start(context.Background(), "core.recover")
	if span != nil {
		span.SetAttr("app", app.Interface)
		span.SetAttr("node", s.node.Name())
	}
	defer func() {
		if err == nil {
			hub.Metrics.Counter("alfredo_core_recoveries_total").Inc()
			hub.Metrics.Histogram("alfredo_core_recover_seconds").ObserveSince(start)
		}
		span.Fail(err)
		span.Finish()
	}()

	ch := s.channel()
	info, ok := ch.FindRemoteService(app.Interface)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchRemoteService, app.Interface)
	}
	// Warm-start fast path: after a reconnect the chunk cache usually
	// still holds the service bundle, so recovery moves only the
	// manifest over the fresh link.
	reply, fstats, err := ch.AcquireFetch(ctx, info.ID)
	if err != nil {
		return err
	}
	pb, err := ch.BuildProxy(reply)
	if err != nil {
		return err
	}
	pb.SetStartWork(desc.StartWork())
	s.node.cfg.Sim.InstallBundle()
	bundle, err := s.node.fw.InstallDynamic(pb.Archive, pb.Activator)
	if err != nil {
		return err
	}
	if err := bundle.Start(); err != nil {
		_ = bundle.Uninstall()
		return err
	}
	ch.TrackProxy(bundle)

	type recoveredDep struct {
		proxy  *remote.DynamicService
		bundle *module.Bundle
	}
	deps := make(map[string]recoveredDep, len(pull))
	for _, depIface := range pull {
		dinfo, ok := ch.FindRemoteService(depIface)
		if !ok {
			_ = bundle.Uninstall()
			return fmt.Errorf("%w: dependency %s", ErrNoSuchRemoteService, depIface)
		}
		dreply, _, err := ch.AcquireFetch(ctx, dinfo.ID)
		if err != nil {
			_ = bundle.Uninstall()
			return err
		}
		db, proxy, err := ch.InstallProxy(dreply)
		if err != nil {
			_ = bundle.Uninstall()
			return err
		}
		deps[depIface] = recoveredDep{proxy: proxy, bundle: db}
	}

	app.mu.Lock()
	if app.done {
		app.mu.Unlock()
		_ = bundle.Uninstall()
		return nil
	}
	app.Bundle = bundle
	app.Proxy = pb.Service
	// Rebuild the dependency routes on the fresh channel, each with a
	// new placement epoch — but against the placement as it is NOW, not
	// the snapshot the fetches ran from: a push that landed while we
	// were refetching must stay pushed (its refetched proxy is
	// discarded), and a pull that raced us onto this same channel keeps
	// its route. The remaining old routes are retired below; any invoke
	// still holding one completes there before reloading the new route.
	app.ensurePlacement()
	oldRoutes := app.routes
	newRoutes := make(map[string]*depRoute, len(deps))
	newDeps := make(map[string]*remote.DynamicService, len(deps))
	var discard []recoveredDep
	for svc, rd := range deps {
		if !containsString(app.Placement.PullLogic, svc) {
			discard = append(discard, rd) // pushed back mid-recovery
			continue
		}
		app.placeEpoch++
		newRoutes[svc] = &depRoute{epoch: app.placeEpoch, local: rd.proxy, bundle: rd.bundle, ch: ch}
		newDeps[svc] = rd.proxy
	}
	for svc, r := range oldRoutes {
		if _, replaced := newRoutes[svc]; replaced {
			continue
		}
		if r.local != nil && r.ch == ch && containsString(app.Placement.PullLogic, svc) {
			// Pulled concurrently on the fresh channel: that placement is
			// newer than our snapshot — keep it live.
			newRoutes[svc] = r
			newDeps[svc] = r.local
			delete(oldRoutes, svc)
		}
	}
	app.routes = newRoutes
	app.Deps = newDeps
	app.Fetch = fstats
	app.degraded = false
	recovered := app.recovered
	app.recovered = nil
	view := app.View
	app.mu.Unlock()
	for _, rd := range discard {
		_ = rd.bundle.Uninstall()
		ch.UntrackProxy(rd.bundle)
	}
	for _, r := range oldRoutes {
		drained := r.retire()
		if r.local == nil {
			continue
		}
		// A displaced local route: usually its proxy already died with
		// the old channel's teardown (releaseLocal is then a no-op), but
		// one that lost a race on the live channel must be released once
		// its last invoke drains.
		go func(r *depRoute) {
			<-drained
			r.releaseLocal()
		}(r)
	}
	if recovered != nil {
		close(recovered)
	}
	app.setControlsEnabled(view, true)
	return nil
}

// setControlsEnabled toggles the enabled-gate on every rendered
// control of the view (no-op without a UI).
func (a *Application) setControlsEnabled(view render.View, enabled bool) {
	if view == nil {
		return
	}
	for _, id := range view.Report().Shown {
		_ = view.SetProperty(id, render.PropEnabled, enabled)
	}
}
