package core

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/sim/leak"
)

// acquireCounter drives one Acquire of the counter app on the virtual
// clock and fails the test if it does not complete.
func acquireCounter(t *testing.T, v *clock.Virtual, session *Session) *Application {
	t.Helper()
	var app *Application
	driveV(t, v, time.Minute, func() {
		a, err := session.Acquire("demo.Counter", AcquireOptions{})
		if err != nil {
			t.Errorf("Acquire: %v", err)
			return
		}
		app = a
	})
	if app == nil {
		t.FailNow()
	}
	return app
}

// TestPullDependencyConcurrentSingleFlight is the regression test for
// the pull TOCTOU race: the lock used to be dropped between the dup
// check and the install, so concurrent pulls (optimizer tick + direct
// call) each fetched and installed a proxy, the losers' proxies were
// silently overwritten, and Placement.PullLogic collected duplicate
// entries. Pulls for one service are now single-flighted.
func TestPullDependencyConcurrentSingleFlight(t *testing.T) {
	v, session, _ := optimizerPair(t)
	app := acquireCounter(t, v, session)

	const callers = 8
	errs := make([]error, callers)
	driveV(t, v, time.Minute, func() {
		var wg sync.WaitGroup
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = app.PullDependency("demo.Stats")
			}(i)
		}
		wg.Wait()
	})
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent pull %d: %v", i, err)
		}
	}
	count := 0
	for _, s := range app.Placement.PullLogic {
		if s == "demo.Stats" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("PullLogic lists demo.Stats %d times, want exactly 1: %v", count, app.Placement.PullLogic)
	}
	if local, _ := app.DependencyLocal("demo.Stats"); !local {
		t.Fatal("dependency not local after concurrent pulls")
	}
	// A single cutover happened: acquire-time epoch bumps aside, the
	// eight callers produced one new placement, not eight.
	if _, epoch := app.DependencyLocal("demo.Stats"); epoch != app.PlacementEpoch() {
		t.Fatalf("route epoch %d is not the latest epoch %d", epoch, app.PlacementEpoch())
	}
}

// TestPushDependencyRoundTrip exercises the new dual of PullDependency:
// pull, invoke locally, push back, invoke remotely — with the module
// lifecycle releasing the local proxy and the bookkeeping (Deps,
// PullLogic, counters) returning to the remote state.
func TestPushDependencyRoundTrip(t *testing.T) {
	v, session, _ := optimizerPair(t)
	app := acquireCounter(t, v, session)
	reg := session.obsHub().Metrics
	// The default obs hub is shared process-wide; assert deltas.
	pulls0 := reg.Total(placementPullsFamily)
	pushes0 := reg.Total(placementPushesFamily)
	flaps0 := reg.Total(placementFlapsFamily)

	driveV(t, v, time.Minute, func() {
		// Pushing a dependency that was never pulled is a no-op.
		if err := app.PushDependency("demo.Stats"); err != nil {
			t.Errorf("push while remote: %v", err)
		}
		if err := app.PullDependency("demo.Stats"); err != nil {
			t.Errorf("pull: %v", err)
			return
		}
		if local, _ := app.DependencyLocal("demo.Stats"); !local {
			t.Error("not local after pull")
		}
		if _, err := app.InvokeDependency("demo.Stats", "Double", int64(3)); err != nil {
			t.Errorf("local Double: %v", err)
		}
		if err := app.PushDependency("demo.Stats"); err != nil {
			t.Errorf("push: %v", err)
			return
		}
		if local, _ := app.DependencyLocal("demo.Stats"); local {
			t.Error("still local after push")
		}
		if _, dup := app.Deps["demo.Stats"]; dup {
			t.Error("Deps still lists the pushed dependency")
		}
		if containsString(app.Placement.PullLogic, "demo.Stats") {
			t.Error("PullLogic still lists the pushed dependency")
		}
		// The tier is back on the target; invokes go over the wire again.
		if res, err := app.InvokeDependency("demo.Stats", "Double", int64(5)); err != nil || res != int64(10) {
			t.Errorf("remote Double = %v, %v", res, err)
		}
	})
	if got := reg.Total(placementPullsFamily) - pulls0; got != 1 {
		t.Errorf("placement_pulls_total grew by %d, want 1", got)
	}
	if got := reg.Total(placementPushesFamily) - pushes0; got != 1 {
		t.Errorf("placement_pushes_total grew by %d, want 1", got)
	}
	if got := reg.Total(placementFlapsFamily) - flaps0; got != 0 {
		t.Errorf("placement_flaps_total grew by %d, want 0", got)
	}
}

// TestCutoverLosslessUnderTraffic is the exactly-once cutover property
// in miniature: invokers hammer the dependency while placement flips
// local/remote several times over a link with real (virtual) latency.
// Every invoke must complete with the right answer, and the dispatch
// accounting must show each issued invoke landing on exactly one
// placement.
func TestCutoverLosslessUnderTraffic(t *testing.T) {
	v, session, conn := optimizerPair(t)
	app := acquireCounter(t, v, session)
	reg := session.obsHub().Metrics

	// Give remote invokes a real flight time so cutovers overlap them.
	conn.SetLink(netsim.LinkProfile{Name: "slow", Latency: 5 * time.Millisecond})

	var stop atomic.Bool
	var issued, completed atomic.Int64
	const invokers = 4
	var wg sync.WaitGroup
	for i := 0; i < invokers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := int64(1); !stop.Load(); k++ {
				issued.Add(1)
				res, err := app.InvokeDependency("demo.Stats", "Double", k)
				if err != nil {
					t.Errorf("invoker %d call %d: %v", i, k, err)
					return
				}
				if res != 2*k {
					t.Errorf("invoker %d: Double(%d) = %v", i, k, res)
					return
				}
				completed.Add(1)
			}
		}(i)
	}

	for round := 0; round < 4; round++ {
		driveV(t, v, time.Minute, func() {
			if err := app.PullDependency("demo.Stats"); err != nil {
				t.Errorf("round %d pull: %v", round, err)
			}
		})
		v.Advance(20 * time.Millisecond)
		driveV(t, v, time.Minute, func() {
			if err := app.PushDependency("demo.Stats"); err != nil {
				t.Errorf("round %d push: %v", round, err)
			}
		})
		v.Advance(20 * time.Millisecond)
	}

	stop.Store(true)
	var done atomic.Bool
	go func() { wg.Wait(); done.Store(true) }()
	if !v.WaitCond(time.Minute, done.Load) {
		t.Fatal("invokers did not drain after the final cutover")
	}

	if issued.Load() != completed.Load() {
		t.Fatalf("issued %d invokes, completed %d", issued.Load(), completed.Load())
	}
	inv, disp := reg.Total(depInvokesFamily), reg.Total(depDispatchFamily)
	if inv != disp {
		t.Fatalf("dep invokes issued %d != dispatched %d: an invoke was dropped or double-dispatched", inv, disp)
	}
	if inv < issued.Load() {
		t.Fatalf("counter %d below driver count %d", inv, issued.Load())
	}
}

// TestOptimizerPushesWhenLinkRecovers drives the full bidirectional
// arc on live signals: degrade → EWMA crosses the pull threshold →
// pull; recover → EWMA decays below the push threshold → push after
// the dwell. Hysteresis keeps the flap counter at zero throughout.
func TestOptimizerPushesWhenLinkRecovers(t *testing.T) {
	v, session, conn := optimizerPair(t)
	app := acquireCounter(t, v, session)
	reg := session.obsHub().Metrics
	pushes0 := reg.Total(placementPushesFamily)
	flaps0 := reg.Total(placementFlapsFamily)

	opt, err := app.StartOptimizer(OptimizerConfig{
		Interval:     10 * time.Millisecond,
		RTTThreshold: 20 * time.Millisecond,
		PushRTT:      5 * time.Millisecond,
		RTTAlpha:     1, // no smoothing: deterministic rounds
		MinDwell:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, opt.Stop)

	conn.SetLink(netsim.LinkProfile{Name: "degraded", Latency: 30 * time.Millisecond})
	if !v.WaitCond(5*time.Second, func() bool {
		local, _ := app.DependencyLocal("demo.Stats")
		return local
	}) {
		t.Fatal("never pulled on the degraded link")
	}

	// Let the dwell expire while the link is still degraded, so the
	// recovery-driven reversal is a legitimate move, not a flap.
	v.Advance(60 * time.Millisecond)
	conn.SetLink(netsim.Loopback)
	if !v.WaitCond(5*time.Second, func() bool {
		local, _ := app.DependencyLocal("demo.Stats")
		return !local
	}) {
		t.Fatal("never pushed back after the link recovered")
	}
	if got := reg.Total(placementPushesFamily) - pushes0; got != 1 {
		t.Errorf("placement_pushes_total grew by %d, want 1", got)
	}
	if got := reg.Total(placementFlapsFamily) - flaps0; got != 0 {
		t.Errorf("placement_flaps_total grew by %d, want 0 on a clean degrade/recover arc", got)
	}
}

// TestOptimizerDwellSuppressesFlap pins the hysteresis contract: when
// the link recovers immediately after a pull, the push signal fires
// inside the dwell window, the reversal is suppressed, and the
// suppression is counted as exactly one flap per dwell period — the
// placement itself must not move.
func TestOptimizerDwellSuppressesFlap(t *testing.T) {
	v, session, conn := optimizerPair(t)
	app := acquireCounter(t, v, session)
	reg := session.obsHub().Metrics
	flaps0 := reg.Total(placementFlapsFamily)
	pushes0 := reg.Total(placementPushesFamily)

	opt, err := app.StartOptimizer(OptimizerConfig{
		Interval:     10 * time.Millisecond,
		RTTThreshold: 20 * time.Millisecond,
		PushRTT:      5 * time.Millisecond,
		RTTAlpha:     1,
		MinDwell:     10 * time.Second, // effectively pin the placement
	})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, opt.Stop)

	conn.SetLink(netsim.LinkProfile{Name: "degraded", Latency: 30 * time.Millisecond})
	if !v.WaitCond(5*time.Second, func() bool {
		local, _ := app.DependencyLocal("demo.Stats")
		return local
	}) {
		t.Fatal("never pulled on the degraded link")
	}

	// Immediate recovery: the push band is satisfied on the very next
	// probes, but the dwell holds the placement.
	conn.SetLink(netsim.Loopback)
	if !v.WaitCond(5*time.Second, func() bool {
		return reg.Total(placementFlapsFamily) > flaps0
	}) {
		t.Fatal("suppressed reversal never counted as a flap")
	}
	v.Advance(200 * time.Millisecond)
	if local, _ := app.DependencyLocal("demo.Stats"); !local {
		t.Fatal("dwell failed to hold the placement")
	}
	if got := reg.Total(placementFlapsFamily) - flaps0; got != 1 {
		t.Errorf("placement_flaps_total grew by %d, want exactly 1 per dwell period", got)
	}
	if got := reg.Total(placementPushesFamily) - pushes0; got != 0 {
		t.Errorf("placement_pushes_total grew by %d, want 0 while the dwell holds", got)
	}
}

// TestReleaseStopsOptimizer is the regression test for the optimizer
// leak: Release used to leave an attached optimizer ticking (its
// goroutine alive, its rounds racing the released application) until
// the whole session closed. Release now stops registered optimizers.
func TestReleaseStopsOptimizer(t *testing.T) {
	leak.CheckGoroutines(t)
	v, session, _ := optimizerPair(t)
	app := acquireCounter(t, v, session)

	var rounds atomic.Int64
	_, err := app.StartOptimizer(OptimizerConfig{
		Interval:   10 * time.Millisecond,
		OnDecision: func(Decision) { rounds.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.WaitCond(time.Minute, func() bool { return rounds.Load() >= 3 }) {
		t.Fatal("optimizer never probed")
	}

	driveV(t, v, time.Minute, app.Release)
	v.Advance(50 * time.Millisecond) // let an in-flight round finish
	after := rounds.Load()
	v.Advance(500 * time.Millisecond)
	if got := rounds.Load(); got != after {
		t.Fatalf("optimizer still probing after Release: %d rounds -> %d", after, got)
	}
	if _, err := app.StartOptimizer(OptimizerConfig{}); !errors.Is(err, ErrAlreadyAcquired) {
		t.Errorf("StartOptimizer after Release = %v, want ErrAlreadyAcquired", err)
	}
}

// TestPullDiscardedWhenReleasedMidFlight is the regression test for the
// done re-check: a pull whose fetch was in flight when Release ran used
// to install its proxy into the released application anyway. The swap
// now re-checks done under the lock and tears the fresh proxy down.
func TestPullDiscardedWhenReleasedMidFlight(t *testing.T) {
	v, session, conn := optimizerPair(t)
	app := acquireCounter(t, v, session)

	// Slow the link so the pull's fetch is reliably in flight when the
	// release lands.
	conn.SetLink(netsim.LinkProfile{Name: "slow", Latency: 20 * time.Millisecond})

	pullErr := make(chan error, 1)
	go func() { pullErr <- app.PullDependency("demo.Stats") }()
	v.Advance(5 * time.Millisecond) // fetch underway, far from done
	driveV(t, v, time.Minute, app.Release)

	var got error
	var done atomic.Bool
	go func() { got = <-pullErr; done.Store(true) }()
	if !v.WaitCond(time.Minute, done.Load) {
		t.Fatal("pull never returned after release")
	}
	if !errors.Is(got, ErrAlreadyAcquired) {
		t.Fatalf("pull racing release = %v, want ErrAlreadyAcquired", got)
	}
	if _, dup := app.Deps["demo.Stats"]; dup {
		t.Fatal("released application kept the pulled proxy")
	}
	if containsString(app.Placement.PullLogic, "demo.Stats") {
		t.Fatal("released application kept the PullLogic entry")
	}
}

// TestOptimizerSurvivesPingBlip is the regression test for
// death-on-blip: the loop used to exit permanently on the first Ping
// error, so a transient outage disabled optimization for the rest of
// the session even though the resilient link auto-reconnects. Failed
// probes are now skipped rounds; after the link heals, the optimizer
// still reacts to the (now degraded) link and pulls.
func TestOptimizerSurvivesPingBlip(t *testing.T) {
	leak.CheckGoroutines(t)
	v := clock.NewVirtual(3)
	provider, err := NewNode(NodeConfig{Name: "target", Profile: device.Notebook(), Clock: v, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := provider.RegisterApp(counterApp()); err != nil {
		t.Fatal(err)
	}
	phone, err := NewNode(NodeConfig{
		Name: "phone", Profile: device.Nokia9300i(), Clock: v, Seed: 2,
		InvokeTimeout: 500 * time.Millisecond,
		Retry: remote.RetryPolicy{
			MaxAttempts:     3,
			BaseDelay:       10 * time.Millisecond,
			ReconnectBudget: 10 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	fabric := netsim.NewFabric().WithClock(v).WithSeed(3)
	l, err := fabric.Listen("target")
	if err != nil {
		t.Fatal(err)
	}
	provider.Serve(l)

	// The dial profile is swappable: the post-blip reconnect comes up on
	// a degraded link, which the recovered optimizer must react to.
	var degradedLink atomic.Bool
	var mu sync.Mutex
	var conns []*netsim.Conn
	dial := func() (net.Conn, error) {
		profile := netsim.Loopback
		if degradedLink.Load() {
			profile = netsim.LinkProfile{Name: "degraded", Latency: 30 * time.Millisecond}
		}
		c, err := fabric.Dial("target", profile)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		conns = append(conns, c.(*netsim.Conn))
		mu.Unlock()
		return c, nil
	}

	var session *Session
	driveV(t, v, time.Minute, func() {
		s, err := phone.ConnectResilient(dial)
		if err != nil {
			t.Errorf("ConnectResilient: %v", err)
			return
		}
		session = s
	})
	if session == nil {
		t.FailNow()
	}
	t.Cleanup(func() {
		driveV(t, v, time.Minute, func() {
			session.Close()
			phone.Close()
			provider.Close()
		})
		_ = l.Close()
	})
	app := acquireCounter(t, v, session)

	var skipped atomic.Int64
	opt, err := app.StartOptimizer(OptimizerConfig{
		Interval:     10 * time.Millisecond,
		RTTThreshold: 20 * time.Millisecond,
		RTTAlpha:     1,
		OnDecision: func(d Decision) {
			if d.Skipped {
				skipped.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, opt.Stop)
	v.Advance(50 * time.Millisecond) // healthy rounds on the fast link

	// The blip: drop the conn and keep the target dark briefly. Probes
	// during the window fail; the old optimizer died right here.
	degradedLink.Store(true)
	fabric.Block("target", 100*time.Millisecond)
	mu.Lock()
	conns[len(conns)-1].Drop()
	mu.Unlock()

	if !v.WaitCond(10*time.Second, func() bool { return skipped.Load() >= 1 }) {
		t.Fatal("no probe round was skipped during the blip")
	}
	if !v.WaitCond(30*time.Second, func() bool {
		local, _ := app.DependencyLocal("demo.Stats")
		return local
	}) {
		t.Fatal("optimizer never pulled after the blip healed: the loop died on the transient error")
	}
}
