package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/remote"
)

// Live tier re-placement (DESIGN.md §13): the mechanics under the
// bidirectional optimizer. Each movable logic-tier dependency has one
// depRoute at a time — the epoch-numbered placement of that tier. A
// pull installs a local proxy route; a push swaps a remote route back
// in, drains the invokes still in flight on the local proxy, and only
// then releases the proxy through the module lifecycle. Routes swap
// atomically under the application lock and a retired route admits no
// new invokes, so every dependency invoke issued during a cutover
// dispatches to exactly one placement and none are dropped.

// depRoute is the live placement of one movable dependency.
type depRoute struct {
	// epoch numbers this placement; it is bumped on every cutover so
	// diagnostics can correlate an invoke with the placement it ran on.
	epoch int64
	// local is the installed proxy while the logic tier runs on this
	// node; nil routes invokes over the channel to the target.
	local *remote.DynamicService
	// bundle and ch tie a local proxy to its module and the channel
	// tracking it, for teardown when the route is replaced.
	bundle *module.Bundle
	ch     *remote.Channel

	mu       sync.Mutex
	inflight int
	retired  bool
	idle     chan struct{}
}

// begin admits one invoke onto the route; false means the route was
// retired by a cutover and the caller must reload the current one.
func (r *depRoute) begin() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.retired {
		return false
	}
	r.inflight++
	return true
}

// end retires one in-flight invoke, releasing the drain waiter once a
// retired route empties.
func (r *depRoute) end() {
	r.mu.Lock()
	if r.inflight--; r.inflight == 0 && r.retired {
		close(r.idle)
	}
	r.mu.Unlock()
}

// retire closes the route to new invokes and returns a channel that is
// closed once the last in-flight invoke on it finishes. Idempotent.
func (r *depRoute) retire() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.retired {
		r.retired = true
		r.idle = make(chan struct{})
		if r.inflight == 0 {
			close(r.idle)
		}
	}
	return r.idle
}

// releaseLocal uninstalls a drained local route's proxy through the
// module lifecycle and drops it from channel-teardown tracking (which
// would otherwise grow without bound across pull/push cycles).
func (r *depRoute) releaseLocal() {
	if r.bundle != nil && r.bundle.State() != module.StateUninstalled {
		_ = r.bundle.Uninstall()
	}
	if r.ch != nil {
		r.ch.UntrackProxy(r.bundle)
	}
}

// placeFlight single-flights concurrent re-placements of one service:
// the first caller performs the move, same-direction callers share its
// outcome, opposite-direction callers wait and re-evaluate.
type placeFlight struct {
	toLocal bool
	done    chan struct{}
	err     error
}

// moveStamp records the last placement move of one dependency, for the
// optimizer's dwell gating and flap detection on the clock seam.
type moveStamp struct {
	at      time.Time
	toLocal bool
}

// ensurePlacement initializes the placement maps. Callers hold a.mu or
// have exclusive access to a fresh Application.
func (a *Application) ensurePlacement() {
	if a.routes == nil {
		a.routes = make(map[string]*depRoute)
	}
	if a.placeFlights == nil {
		a.placeFlights = make(map[string]*placeFlight)
	}
	if a.lastMove == nil {
		a.lastMove = make(map[string]moveStamp)
	}
}

// findDependency resolves a declared dependency by interface name.
func (a *Application) findDependency(service string) *Dependency {
	for i := range a.Descriptor.Dependencies {
		if a.Descriptor.Dependencies[i].Service == service {
			return &a.Descriptor.Dependencies[i]
		}
	}
	return nil
}

// dep resolves a pulled dependency proxy under the application lock.
func (a *Application) dep(service string) (invoker interface {
	Invoke(method string, args []any) (any, error)
}, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.Deps[service]
	return d, ok
}

// PullDependency moves one movable logic-tier dependency to the client
// at runtime: its proxy is fetched, installed and routed to, so
// subsequent invocations of that service run through it (locally, when
// smart proxy code is installed). Concurrent calls for the same
// service are single-flighted: one caller fetches, the rest share its
// outcome. It is the mechanism under the online optimizer and may also
// be called directly.
func (a *Application) PullDependency(service string) error {
	return a.placeDependency(service, true, "pulled at runtime by the online optimizer")
}

// PushDependency is the dual of PullDependency: it returns a pulled
// logic-tier dependency to target-side execution. New invokes route to
// the remote service immediately; invokes in flight on the local proxy
// drain, then the proxy bundle is uninstalled through the module
// lifecycle. The cutover drops no invokes. Pushing a dependency that
// is not local is a no-op.
func (a *Application) PushDependency(service string) error {
	return a.placeDependency(service, false, "pushed back to the target by the online optimizer")
}

// placeDependency validates, single-flights and dispatches one
// re-placement in either direction.
func (a *Application) placeDependency(service string, toLocal bool, reason string) error {
	dep := a.findDependency(service)
	if dep == nil {
		return fmt.Errorf("%w: %s not declared", ErrNoSuchRemoteService, service)
	}
	if dep.Tier != TierLogic || !dep.Movable {
		return fmt.Errorf("%w: %s", ErrNotMovable, service)
	}
	for {
		a.mu.Lock()
		if a.done {
			a.mu.Unlock()
			return ErrAlreadyAcquired
		}
		a.ensurePlacement()
		r := a.routes[service]
		if local := r != nil && r.local != nil; local == toLocal {
			a.mu.Unlock()
			return nil // already in the requested placement
		}
		if f, inflight := a.placeFlights[service]; inflight {
			sameDir := f.toLocal == toLocal
			a.mu.Unlock()
			<-f.done
			if sameDir {
				return f.err // share the winner's outcome
			}
			continue // opposite move finished; re-evaluate from scratch
		}
		f := &placeFlight{toLocal: toLocal, done: make(chan struct{})}
		a.placeFlights[service] = f
		a.mu.Unlock()

		if toLocal {
			f.err = a.pullLocal(service, reason)
		} else {
			f.err = a.pushRemote(service, reason)
		}
		a.mu.Lock()
		delete(a.placeFlights, service)
		a.mu.Unlock()
		close(f.done)
		return f.err
	}
}

// pullLocal fetches the dependency's service and installs its proxy,
// then swaps the local route in. The network phase runs off the
// application lock; the swap re-checks release and lost races, so a
// proxy installed after Release (or after a concurrent recovery made
// the dependency local) is torn down instead of leaked.
func (a *Application) pullLocal(service, reason string) error {
	ch := a.session.channel()
	info, ok := ch.FindRemoteService(service)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchRemoteService, service)
	}
	reply, err := ch.Fetch(info.ID)
	if err != nil {
		return err
	}
	b, proxy, err := ch.InstallProxy(reply)
	if err != nil {
		return err
	}
	a.mu.Lock()
	if done, local := a.done, a.routes[service] != nil && a.routes[service].local != nil; done || local {
		a.mu.Unlock()
		_ = b.Uninstall()
		ch.UntrackProxy(b)
		if done {
			return ErrAlreadyAcquired
		}
		return nil
	}
	old := a.installLocalRoute(service, proxy, b, ch, reason)
	a.mu.Unlock()
	if old != nil {
		// Retired remote route: nothing to release; its in-flight
		// invokes complete on the channel they were issued on.
		old.retire()
	}
	a.session.countPull()
	return nil
}

// installLocalRoute swaps in a fresh local placement for service and
// returns the replaced route (nil when the dependency had none).
// Callers hold a.mu or have exclusive access to the Application. An
// empty reason keeps the recorded placement reason.
func (a *Application) installLocalRoute(service string, proxy *remote.DynamicService, b *module.Bundle, ch *remote.Channel, reason string) *depRoute {
	a.ensurePlacement()
	old := a.routes[service]
	a.placeEpoch++
	a.routes[service] = &depRoute{epoch: a.placeEpoch, local: proxy, bundle: b, ch: ch}
	a.Deps[service] = proxy
	if !containsString(a.Placement.PullLogic, service) {
		a.Placement.PullLogic = append(a.Placement.PullLogic, service)
	}
	if reason != "" {
		if a.Placement.Reasons == nil {
			a.Placement.Reasons = make(map[string]string)
		}
		a.Placement.Reasons[service] = reason
	}
	a.lastMove[service] = moveStamp{at: a.session.node.cfg.Clock.Now(), toLocal: true}
	return old
}

// pushRemote is the lossless push cutover: swap a remote route in
// under the lock (new invokes go to the target immediately), drain the
// invokes still in flight on the local proxy, then release the proxy
// through the module lifecycle.
func (a *Application) pushRemote(service, reason string) error {
	a.mu.Lock()
	a.ensurePlacement()
	old := a.routes[service]
	if old == nil || old.local == nil {
		a.mu.Unlock()
		return nil
	}
	a.placeEpoch++
	a.routes[service] = &depRoute{epoch: a.placeEpoch}
	delete(a.Deps, service)
	a.Placement.PullLogic = removeString(a.Placement.PullLogic, service)
	if reason != "" {
		if a.Placement.Reasons == nil {
			a.Placement.Reasons = make(map[string]string)
		}
		a.Placement.Reasons[service] = reason
	}
	a.lastMove[service] = moveStamp{at: a.session.node.cfg.Clock.Now(), toLocal: false}
	a.mu.Unlock()

	<-old.retire()
	old.releaseLocal()
	a.session.countPush()
	return nil
}

// InvokeDependency calls a method on one of the application's declared
// dependencies through its current placement: the local proxy while
// the logic tier is pulled (smart proxy code then executes on-device),
// the remote service otherwise. A cutover concurrent with the call is
// lossless — the invoke dispatches to exactly one placement.
func (a *Application) InvokeDependency(service, method string, args ...any) (any, error) {
	return a.invokeDependency(service, method, args)
}

func (a *Application) invokeDependency(service, method string, args []any) (any, error) {
	m := a.session.obsHub().Metrics
	m.Counter(depInvokesFamily).Inc()
	for {
		a.mu.Lock()
		r := a.routes[service]
		a.mu.Unlock()
		if r == nil {
			// Never re-placed: invoke straight on the target.
			m.Counter(depDispatchFamily).Inc()
			return a.invokeDepRemote(service, method, args)
		}
		if !r.begin() {
			continue // retired mid-lookup; reload the current route
		}
		m.Counter(depDispatchFamily).Inc()
		var res any
		var err error
		if r.local != nil {
			res, err = r.local.Invoke(method, args)
		} else {
			res, err = a.invokeDepRemote(service, method, args)
		}
		r.end()
		return res, err
	}
}

func (a *Application) invokeDepRemote(service, method string, args []any) (any, error) {
	ch := a.session.channel()
	if info, ok := ch.FindRemoteService(service); ok {
		return ch.Invoke(info.ID, method, args)
	}
	return nil, fmt.Errorf("%w: %s", ErrNoSuchRemoteService, service)
}

// DependencyLocal reports whether the dependency currently executes
// through a local proxy, and the epoch of its placement.
func (a *Application) DependencyLocal(service string) (local bool, epoch int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r := a.routes[service]; r != nil {
		return r.local != nil, r.epoch
	}
	return false, 0
}

// PlacementEpoch returns the number of placement cutovers this
// application has performed (including acquire-time pulls).
func (a *Application) PlacementEpoch() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.placeEpoch
}

// lastPlacementMove returns the dwell stamp of the dependency's most
// recent placement move.
func (a *Application) lastPlacementMove(service string) (moveStamp, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.lastMove[service]
	return s, ok
}

// PlacementConsistent audits the placement bookkeeping under the
// application lock: PullLogic is duplicate-free and every entry in it,
// in Deps, and in the route table agrees on where each dependency
// runs. The sim harness checks it after every schedule step; any
// divergence means a cutover lost a race.
func (a *Application) PlacementConsistent() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.done {
		return nil // released: teardownPlacement cleared the routes
	}
	seen := make(map[string]bool, len(a.Placement.PullLogic))
	for _, s := range a.Placement.PullLogic {
		if seen[s] {
			return fmt.Errorf("core: %s listed twice in PullLogic", s)
		}
		seen[s] = true
		if _, ok := a.Deps[s]; !ok {
			return fmt.Errorf("core: %s in PullLogic but absent from Deps", s)
		}
	}
	for s, proxy := range a.Deps {
		if !seen[s] {
			return fmt.Errorf("core: %s in Deps but absent from PullLogic", s)
		}
		r := a.routes[s]
		if r == nil || r.local == nil {
			return fmt.Errorf("core: %s in Deps but its route is not local", s)
		}
		if r.local != proxy {
			return fmt.Errorf("core: %s route proxy differs from Deps entry", s)
		}
	}
	for s, r := range a.routes {
		if r.local != nil && !seen[s] {
			return fmt.Errorf("core: %s has a local route but no PullLogic entry", s)
		}
	}
	return nil
}

// teardownPlacement retires every route and stops attached optimizers;
// Release calls it so re-placement machinery never outlives the
// application. Local proxies still draining are released as soon as
// their last invoke finishes.
func (a *Application) teardownPlacement() {
	a.mu.Lock()
	opts := a.optimizers
	a.optimizers = nil
	routes := a.routes
	a.routes = nil
	a.mu.Unlock()
	for _, o := range opts {
		// Signal without waiting: an optimizer blocked in a probe on a
		// slow link unblocks on its own; waiting here would stall
		// Release on the invoke timeout.
		o.signal()
	}
	for _, r := range routes {
		drained := r.retire()
		if r.local == nil {
			continue
		}
		select {
		case <-drained:
			r.releaseLocal()
		default:
			go func(r *depRoute) {
				<-drained
				r.releaseLocal()
			}(r)
		}
	}
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// removeString returns list without s. It allocates a fresh slice so
// snapshots of the old header (recovery holds one across its fetches)
// never see the mutation.
func removeString(list []string, s string) []string {
	out := make([]string, 0, len(list))
	for _, v := range list {
		if v != s {
			out = append(out, v)
		}
	}
	return out
}
