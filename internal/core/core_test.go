package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/script"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/sim/leak"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// counterApp is a minimal complete AlfredO app: a counter service with
// a movable "stats" logic dependency and a button-driven UI.
func counterApp() *App {
	// Exported services are invoked from concurrent sessions; the
	// counter must be atomic like any real service state.
	var count atomic.Int64
	svc := remote.NewService("demo.Counter").
		Method("Increment", nil, "int", func(args []any) (any, error) {
			return count.Add(1), nil
		}).
		Method("Value", nil, "int", func(args []any) (any, error) {
			return count.Load(), nil
		})

	stats := remote.NewService("demo.Stats").
		Method("Double", []string{"int"}, "int", func(args []any) (any, error) {
			return args[0].(int64) * 2, nil
		})

	desc := &Descriptor{
		Service: "demo.Counter",
		UI: &ui.Description{
			Title: "Counter",
			Controls: []ui.Control{
				{ID: "display", Kind: ui.KindLabel, Text: "Count:"},
				{ID: "inc", Kind: ui.KindButton, Text: "Increment"},
			},
		},
		Controller: &script.Program{
			Rules: []script.Rule{{
				Name: "inc-on-press",
				On:   script.Trigger{UI: &script.UITrigger{Control: "inc", Kind: ui.EventPress}},
				Do: []script.Action{
					{Invoke: &script.InvokeAction{Service: "", Method: "Increment"}},
					{SetControl: &script.SetControlAction{Control: "display", Property: "value", Value: "result"}},
				},
			}},
		},
		Dependencies: []Dependency{
			{Service: "demo.Stats", Tier: TierLogic, Movable: true},
		},
		StartWorkMs: 0,
	}

	return &App{
		Descriptor:   desc,
		Service:      svc,
		Dependencies: map[string]*remote.MethodTable{"demo.Stats": stats},
	}
}

type testPair struct {
	provider *Node
	phone    *Node
	session  *Session
}

func newTestPair(t *testing.T, link netsim.LinkProfile, phoneCfg NodeConfig) *testPair {
	t.Helper()
	// First registration, last to run: after the pair tears down, every
	// goroutine the session spawned must have exited.
	leak.CheckGoroutines(t)
	provider, err := NewNode(NodeConfig{
		Name:    "shop-screen",
		Profile: device.Notebook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := provider.RegisterApp(counterApp()); err != nil {
		t.Fatalf("RegisterApp: %v", err)
	}

	if phoneCfg.Name == "" {
		phoneCfg.Name = "phone"
	}
	if phoneCfg.Profile.Name == "" {
		phoneCfg.Profile = device.Nokia9300i()
	}
	phone, err := NewNode(phoneCfg)
	if err != nil {
		t.Fatal(err)
	}

	fabric := netsim.NewFabric()
	l, err := fabric.Listen("shop-screen")
	if err != nil {
		t.Fatal(err)
	}
	provider.Serve(l)

	conn, err := fabric.Dial("shop-screen", link)
	if err != nil {
		t.Fatal(err)
	}
	session, err := phone.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}

	t.Cleanup(func() {
		session.Close()
		phone.Close()
		provider.Close()
		_ = l.Close()
	})
	return &testPair{provider: provider, phone: phone, session: session}
}

// newVirtualPair is newTestPair on the clock seam: both nodes, the
// fabric and all subsequent waits run on one virtual clock, so the
// test never sleep-polls the real scheduler.
func newVirtualPair(t *testing.T, v *clock.Virtual, phoneCfg NodeConfig) (provider, phone *Node, session *Session) {
	t.Helper()
	leak.CheckGoroutines(t)
	provider, err := NewNode(NodeConfig{
		Name:    "shop-screen",
		Profile: device.Notebook(),
		Clock:   v,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { driveV(t, v, time.Minute, func() { provider.Close() }) })
	if err := provider.RegisterApp(counterApp()); err != nil {
		t.Fatalf("RegisterApp: %v", err)
	}

	if phoneCfg.Name == "" {
		phoneCfg.Name = "phone"
	}
	if phoneCfg.Profile.Name == "" {
		phoneCfg.Profile = device.Nokia9300i()
	}
	phoneCfg.Clock = v
	if phoneCfg.Seed == 0 {
		phoneCfg.Seed = 2
	}
	phone, err = NewNode(phoneCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { driveV(t, v, time.Minute, func() { phone.Close() }) })

	fabric := netsim.NewFabric().WithClock(v).WithSeed(1)
	l, err := fabric.Listen("shop-screen")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	provider.Serve(l)

	driveV(t, v, time.Minute, func() {
		conn, err := fabric.Dial("shop-screen", netsim.Loopback)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		s, err := phone.Connect(conn)
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		session = s
	})
	if session == nil {
		t.FailNow()
	}
	return provider, phone, session
}

func TestLeaseListsAppAndDependencies(t *testing.T) {
	p := newTestPair(t, netsim.Loopback, NodeConfig{})
	svcs := p.session.Services()
	var names []string
	for _, s := range svcs {
		names = append(names, s.Interfaces...)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "demo.Counter") || !strings.Contains(joined, "demo.Stats") {
		t.Errorf("lease = %v", names)
	}
}

func TestAcquireFullPipeline(t *testing.T) {
	p := newTestPair(t, netsim.Loopback, NodeConfig{})
	app, err := p.session.Acquire("demo.Counter", AcquireOptions{})
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}

	// The proxy bundle is installed and active.
	if app.Bundle.State() != module.StateActive {
		t.Errorf("bundle state = %v", app.Bundle.State())
	}
	// The descriptor arrived intact.
	if app.Descriptor.Service != "demo.Counter" || len(app.Descriptor.Dependencies) != 1 {
		t.Errorf("descriptor = %+v", app.Descriptor)
	}
	// The view rendered with the phone's preferred engine (text).
	if app.View == nil {
		t.Fatal("no view")
	}
	if !strings.Contains(app.View.Render(), "Counter") {
		t.Errorf("view missing title:\n%s", app.View.Render())
	}
	// Thin client by default: no dependencies pulled.
	if len(app.Deps) != 0 {
		t.Errorf("thin client pulled %v", app.Deps)
	}
	// All timing phases populated.
	if app.Timing.AcquireInterface <= 0 || app.Timing.BuildProxy <= 0 {
		t.Errorf("timing = %+v", app.Timing)
	}
	if app.Timing.TotalStart() <= 0 {
		t.Error("TotalStart not positive")
	}
}

func TestUIEventDrivesRemoteService(t *testing.T) {
	p := newTestPair(t, netsim.Loopback, NodeConfig{})
	app, err := p.session.Acquire("demo.Counter", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Press the button twice: the controller invokes Increment remotely
	// and writes the result back into the view.
	for i := 0; i < 2; i++ {
		if err := app.View.Inject(ui.Event{Control: "inc", Kind: ui.EventPress}); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := app.View.Property("display", "value"); v != int64(2) {
		t.Errorf("display value = %v, want 2 (controller err: %v)", v, app.Controller.LastError())
	}
	// The target-side state really changed.
	got, err := app.Invoke("Value")
	if err != nil || got != int64(2) {
		t.Errorf("Value = %v, %v", got, err)
	}
}

func TestAdaptivePolicyPullsLogicOnSlowLink(t *testing.T) {
	slow := netsim.LinkProfile{Name: "slow", Latency: 25 * time.Millisecond}
	p := newTestPair(t, slow, NodeConfig{})
	app, err := p.session.Acquire("demo.Counter", AcquireOptions{
		Policy:  AdaptivePolicy{},
		Trusted: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Placement.PullLogic) != 1 || app.Placement.PullLogic[0] != "demo.Stats" {
		t.Fatalf("placement = %+v", app.Placement)
	}
	dep, ok := app.Deps["demo.Stats"]
	if !ok {
		t.Fatal("dependency proxy missing")
	}
	got, err := dep.Invoke("Double", []any{int64(21)})
	if err != nil || got != int64(42) {
		t.Errorf("Double = %v, %v", got, err)
	}
	if app.Timing.Dependencies <= 0 {
		t.Error("dependency timing not recorded")
	}
}

func TestAdaptivePolicyStaysThinOnFastOrUntrusted(t *testing.T) {
	// Fast link: logic stays remote even when trusted.
	p := newTestPair(t, netsim.Loopback, NodeConfig{})
	app, err := p.session.Acquire("demo.Counter", AcquireOptions{Policy: AdaptivePolicy{}, Trusted: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Deps) != 0 {
		t.Errorf("fast link pulled %v; reasons %v", app.Deps, app.Placement.Reasons)
	}
	app.Release()

	// Slow but untrusted: logic stays remote.
	slow := netsim.LinkProfile{Name: "slow", Latency: 25 * time.Millisecond}
	p2 := newTestPair(t, slow, NodeConfig{Name: "phone2"})
	app2, err := p2.session.Acquire("demo.Counter", AcquireOptions{Policy: AdaptivePolicy{}, Trusted: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(app2.Deps) != 0 {
		t.Errorf("untrusted target had logic pulled: %v", app2.Placement.Reasons)
	}
	if reason := app2.Placement.Reasons["demo.Stats"]; !strings.Contains(reason, "untrusted") {
		t.Errorf("reason = %q", reason)
	}
}

func TestControllerReachesUnpulledDependencyTransparently(t *testing.T) {
	// Thin client: host.Invoke("demo.Stats", ...) must route over the
	// network without a proxy — tier placement is transparent.
	p := newTestPair(t, netsim.Loopback, NodeConfig{})
	app, err := p.session.Acquire("demo.Counter", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	host := &sessionHost{app: app}
	got, err := host.Invoke("demo.Stats", "Double", []any{int64(5)})
	if err != nil || got != int64(10) {
		t.Errorf("transparent dep invoke = %v, %v", got, err)
	}
	if _, err := host.Invoke("no.Such", "M", nil); !errors.Is(err, ErrNoSuchRemoteService) {
		t.Errorf("unknown service = %v", err)
	}
}

func TestReleaseUninstallsProxy(t *testing.T) {
	p := newTestPair(t, netsim.Loopback, NodeConfig{})
	app, err := p.session.Acquire("demo.Counter", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bundle := app.Bundle
	app.Release()
	if bundle.State() != module.StateUninstalled {
		t.Errorf("bundle state after release = %v", bundle.State())
	}
	if p.phone.Framework().Registry().Find("demo.Counter", nil) != nil {
		t.Error("proxy service survived release")
	}
	// Re-acquire works after release.
	app2, err := p.session.Acquire("demo.Counter", AcquireOptions{})
	if err != nil {
		t.Fatalf("re-acquire: %v", err)
	}
	app2.Release()
}

func TestDoubleAcquireRejected(t *testing.T) {
	p := newTestPair(t, netsim.Loopback, NodeConfig{})
	if _, err := p.session.Acquire("demo.Counter", AcquireOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.session.Acquire("demo.Counter", AcquireOptions{}); !errors.Is(err, ErrAlreadyAcquired) {
		t.Errorf("double acquire = %v", err)
	}
}

func TestAcquireUnknownService(t *testing.T) {
	p := newTestPair(t, netsim.Loopback, NodeConfig{})
	if _, err := p.session.Acquire("no.Such", AcquireOptions{}); !errors.Is(err, ErrNoSuchRemoteService) {
		t.Errorf("unknown acquire = %v", err)
	}
}

func TestAcquireServiceWithoutDescriptor(t *testing.T) {
	p := newTestPair(t, netsim.Loopback, NodeConfig{})
	// demo.Stats is exported but has no AlfredO descriptor.
	if _, err := p.session.Acquire("demo.Stats", AcquireOptions{}); !errors.Is(err, ErrNoDescriptor) {
		t.Errorf("descriptor-less acquire = %v", err)
	}
}

func TestRequirementsGate(t *testing.T) {
	provider, err := NewNode(NodeConfig{Name: "prov", Profile: device.Notebook()})
	if err != nil {
		t.Fatal(err)
	}
	defer provider.Close()
	app := counterApp()
	app.Descriptor.Requirements.Capabilities = []string{string(device.AudioDevice)}
	if err := provider.RegisterApp(app); err != nil {
		t.Fatal(err)
	}

	phone, err := NewNode(NodeConfig{Name: "phone", Profile: device.Nokia9300i()})
	if err != nil {
		t.Fatal(err)
	}
	defer phone.Close()

	fabric := netsim.NewFabric()
	l, _ := fabric.Listen("prov")
	defer l.Close()
	provider.Serve(l)
	conn, _ := fabric.Dial("prov", netsim.Loopback)
	session, err := phone.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()

	if _, err := session.Acquire("demo.Counter", AcquireOptions{}); !errors.Is(err, ErrUnsatisfied) {
		t.Errorf("unsatisfiable acquire = %v", err)
	}
}

func TestRemoteEventReachesController(t *testing.T) {
	v := clock.NewVirtual(1)
	provider, err := NewNode(NodeConfig{Name: "prov", Profile: device.Notebook(), Clock: v, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, func() { provider.Close() })
	app := counterApp()
	app.Descriptor.Controller.Rules = append(app.Descriptor.Controller.Rules, script.Rule{
		Name: "on-tick",
		On:   script.Trigger{Event: &script.EventTrigger{Topic: "counter/tick"}},
		Do: []script.Action{
			{SetControl: &script.SetControlAction{Control: "display", Property: "text", Value: "'tick ' + event.props.n"}},
		},
	})
	if err := provider.RegisterApp(app); err != nil {
		t.Fatal(err)
	}

	phone, err := NewNode(NodeConfig{Name: "phone", Profile: device.Nokia9300i(), Clock: v, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, func() { phone.Close() })

	fabric := netsim.NewFabric().WithClock(v).WithSeed(1)
	l, _ := fabric.Listen("prov")
	defer l.Close()
	provider.Serve(l)
	var session *Session
	var acquired *Application
	driveV(t, v, time.Minute, func() {
		conn, err := fabric.Dial("prov", netsim.Loopback)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		s, err := phone.Connect(conn)
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		session = s
		acquired, err = s.Acquire("demo.Counter", AcquireOptions{})
		if err != nil {
			t.Errorf("Acquire: %v", err)
		}
	})
	if session == nil || acquired == nil {
		t.FailNow()
	}
	defer driveV(t, v, time.Minute, func() { session.Close() })

	// Drain the in-flight Subscribe frame onto the provider — the
	// clock-driven replacement for "sleep and hope it landed".
	v.WaitCond(100*time.Millisecond, func() bool { return false })

	// The target device posts an event; it must cross the link and run
	// the controller rule.
	if err := provider.Events().Post(event.Event{
		Topic:      "counter/tick",
		Properties: map[string]any{"n": int64(7)},
	}); err != nil {
		t.Fatal(err)
	}
	if !v.WaitCond(2*time.Second, func() bool {
		val, _ := acquired.View.Property("display", "text")
		return val == "tick 7"
	}) {
		val, _ := acquired.View.Property("display", "text")
		t.Fatalf("event never updated view; text = %v, ctlErr = %v", val, acquired.Controller.LastError())
	}
}

func TestRegisterAppValidation(t *testing.T) {
	n, err := NewNode(NodeConfig{Name: "n", Profile: device.Notebook()})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	if err := n.RegisterApp(nil); err == nil {
		t.Error("nil app accepted")
	}
	app := counterApp()
	app.Dependencies = nil // declared dependency without implementation
	if err := n.RegisterApp(app); err == nil {
		t.Error("missing dependency implementation accepted")
	}
	good := counterApp()
	if err := n.RegisterApp(good); err != nil {
		t.Fatal(err)
	}
	if err := n.RegisterApp(counterApp()); err == nil {
		t.Error("duplicate app accepted")
	}
	if _, ok := n.RegisteredApp("demo.Counter"); !ok {
		t.Error("RegisteredApp lookup failed")
	}
}

func TestDescriptorValidation(t *testing.T) {
	base := func() *Descriptor { return counterApp().Descriptor }

	d := base()
	d.Service = ""
	if err := d.Validate(); !errors.Is(err, ErrBadDescriptor) {
		t.Errorf("no service = %v", err)
	}
	d = base()
	d.UI = nil
	if err := d.Validate(); !errors.Is(err, ErrBadDescriptor) {
		t.Errorf("no UI = %v", err)
	}
	d = base()
	d.Dependencies = append(d.Dependencies, Dependency{Service: "demo.Stats", Tier: TierLogic})
	if err := d.Validate(); !errors.Is(err, ErrBadDescriptor) {
		t.Errorf("duplicate dep = %v", err)
	}
	d = base()
	d.Dependencies[0].Tier = "quantum"
	if err := d.Validate(); !errors.Is(err, ErrBadDescriptor) {
		t.Errorf("bad tier = %v", err)
	}
	d = base()
	d.Dependencies[0].Tier = TierData
	d.Dependencies[0].Movable = true
	if err := d.Validate(); !errors.Is(err, ErrBadDescriptor) {
		t.Errorf("movable data tier = %v", err)
	}
	d = base()
	d.StartWorkMs = -1
	if err := d.Validate(); !errors.Is(err, ErrBadDescriptor) {
		t.Errorf("negative start work = %v", err)
	}
	// Round trip.
	d = base()
	b, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalDescriptor(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Service != d.Service || len(got.Dependencies) != 1 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := UnmarshalDescriptor([]byte("junk")); !errors.Is(err, ErrBadDescriptor) {
		t.Errorf("junk descriptor = %v", err)
	}
}

func TestSessionCloseReleasesEverything(t *testing.T) {
	p := newTestPair(t, netsim.Loopback, NodeConfig{})
	app, err := p.session.Acquire("demo.Counter", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bundle := app.Bundle
	p.session.Close()
	if bundle.State() != module.StateUninstalled {
		t.Errorf("bundle state after session close = %v", bundle.State())
	}
	if len(p.session.Apps()) != 0 {
		t.Error("apps survive session close")
	}
	p.session.Close() // idempotent
}

func TestForcedRenderer(t *testing.T) {
	p := newTestPair(t, netsim.Loopback, NodeConfig{})
	app, err := p.session.Acquire("demo.Counter", AcquireOptions{Renderer: "tree"})
	if err != nil {
		t.Fatal(err)
	}
	if app.View.Report().Renderer != "tree" {
		t.Errorf("renderer = %s, want tree", app.View.Report().Renderer)
	}
	if _, err := p.session.Acquire("x", AcquireOptions{Renderer: "quantum"}); err == nil {
		t.Error("unknown renderer accepted") // fails earlier on unknown service, so force it:
	}
}

func TestPolicyUnit(t *testing.T) {
	desc := counterApp().Descriptor
	ctx := PolicyContext{Profile: device.Nokia9300i(), Trusted: true, LinkRTT: 80 * time.Millisecond}

	thin := ThinClientPolicy{}.Decide(desc, ctx)
	if len(thin.PullLogic) != 0 {
		t.Errorf("thin policy pulled %v", thin.PullLogic)
	}
	adaptive := AdaptivePolicy{}.Decide(desc, ctx)
	if len(adaptive.PullLogic) != 1 {
		t.Errorf("adaptive policy pulled %v (reasons %v)", adaptive.PullLogic, adaptive.Reasons)
	}
	// Requirements block movement.
	desc2 := counterApp().Descriptor
	desc2.Dependencies[0].Requirements.MinMemoryKB = 1 << 30
	ctx.FreeMemoryKB = 1024
	blocked := AdaptivePolicy{}.Decide(desc2, ctx)
	if len(blocked.PullLogic) != 0 {
		t.Errorf("requirements did not block movement: %v", blocked.Reasons)
	}
}

// TestManyConcurrentPhones exercises the provider under several
// simultaneous sessions — the §4.3 claim that "a service running on a
// coffee machine, on a touchscreen in a shop, or on a vending machine
// may need to support an average of 2-3 concurrent users and a maximum
// of 30".
func TestManyConcurrentPhones(t *testing.T) {
	provider, err := NewNode(NodeConfig{Name: "busy-screen", Profile: device.Notebook()})
	if err != nil {
		t.Fatal(err)
	}
	defer provider.Close()
	if err := provider.RegisterApp(counterApp()); err != nil {
		t.Fatal(err)
	}
	fabric := netsim.NewFabric()
	l, _ := fabric.Listen("busy-screen")
	defer l.Close()
	provider.Serve(l)

	const phones = 12
	var wg sync.WaitGroup
	errs := make(chan error, phones)
	for i := 0; i < phones; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			phone, err := NewNode(NodeConfig{
				Name:    fmt.Sprintf("phone-%d", i),
				Profile: device.Nokia9300i(),
			})
			if err != nil {
				errs <- err
				return
			}
			defer phone.Close()
			conn, err := fabric.Dial("busy-screen", netsim.Loopback)
			if err != nil {
				errs <- err
				return
			}
			session, err := phone.Connect(conn)
			if err != nil {
				errs <- err
				return
			}
			defer session.Close()
			app, err := session.Acquire("demo.Counter", AcquireOptions{})
			if err != nil {
				errs <- fmt.Errorf("phone %d acquire: %w", i, err)
				return
			}
			for j := 0; j < 5; j++ {
				if err := app.View.Inject(ui.Event{Control: "inc", Kind: ui.EventPress}); err != nil {
					errs <- fmt.Errorf("phone %d press: %w", i, err)
					return
				}
			}
			app.Release()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCapabilityExposureInHandshake(t *testing.T) {
	v := clock.NewVirtual(1)
	provider, phone, session := newVirtualPair(t, v, NodeConfig{})
	defer driveV(t, v, time.Minute, func() { session.Close() })
	_ = phone
	// The provider sees the phone's announced profile and capabilities.
	if !v.WaitCond(time.Second, func() bool {
		return len(provider.Peer().Channels()) == 1
	}) {
		t.Fatal("provider never saw the channel")
	}
	props := provider.Peer().Channels()[0].RemoteProps()
	if props["profile"] != "nokia9300i" {
		t.Fatalf("announced profile = %v", props["profile"])
	}
	caps, ok := props["capabilities"].([]any)
	if !ok || len(caps) == 0 {
		t.Fatalf("announced capabilities = %v", props["capabilities"])
	}
}

func TestCapabilityHiding(t *testing.T) {
	v := clock.NewVirtual(1)
	provider, phone, session := newVirtualPair(t, v, NodeConfig{
		Name: "private-phone", HideCapabilities: true,
	})
	defer driveV(t, v, time.Minute, func() { session.Close() })
	_ = phone

	if !v.WaitCond(time.Second, func() bool {
		return len(provider.Peer().Channels()) == 1
	}) {
		t.Fatal("provider never saw the channel")
	}
	props := provider.Peer().Channels()[0].RemoteProps()
	if _, leaked := props["capabilities"]; leaked {
		t.Fatalf("capabilities leaked despite HideCapabilities: %v", props)
	}
}
