package core

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/devsim"
	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/render"
	"github.com/alfredo-mw/alfredo/internal/service"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/stripe"
)

// Node errors.
var (
	ErrNodeClosed = errors.New("core: node closed")
	ErrNoApp      = errors.New("core: app not found")
)

// NodeConfig parameterizes an AlfredO node. A node is symmetric: the
// same type acts as target device (RegisterApp + Serve) and as client
// (Connect + Acquire), exactly like the symmetric leases of §3.2.
type NodeConfig struct {
	// Name identifies the node (peer id, framework name).
	Name string
	// Profile describes the platform's display and input hardware.
	Profile device.Profile
	// Sim is the simulated execution platform (nil disables cost
	// simulation).
	Sim *devsim.Device
	// ProxyCode holds pre-installed smart proxy code.
	ProxyCode *remote.ProxyCodeRegistry
	// Renderers overrides the stock renderer registry.
	Renderers *render.Registry
	// InvokeTimeout bounds remote calls.
	InvokeTimeout time.Duration
	// Retry governs remote retries and link reconnection for resilient
	// sessions (zero fields take defaults).
	Retry remote.RetryPolicy
	// ClientInvokeCost overrides the per-invocation client cost fed to
	// the device model (zero = full AlfredO path).
	ClientInvokeCost time.Duration
	// DispatchWorkers bounds concurrent inbound invocation handlers per
	// channel (zero = remote.DefaultDispatchWorkers, negative =
	// unbounded).
	DispatchWorkers int
	// ReactorWorkers bounds concurrent inbound invocation handlers
	// across all channels of the node's peer (zero =
	// remote.DefaultReactorWorkers, negative = per-channel bound only).
	ReactorWorkers int
	// Admission enables serve-side admission control with per-tenant
	// fairness; nil admits everything.
	Admission *remote.AdmissionPolicy
	// WriteBufferBytes sizes the per-channel write-coalescing buffer
	// (zero = the 32 KiB default; large session counts shrink it).
	WriteBufferBytes int
	// Tenant is announced in the handshake when non-empty: the serving
	// side scopes tenant-bound services and admission accounting to it.
	Tenant string
	// FreeMemoryKB and CPUMHz describe the platform for tier
	// negotiation.
	FreeMemoryKB int64
	CPUMHz       int64
	// StorageDir enables Concierge-style bundle persistence for the
	// node's framework (proxies are never persisted).
	StorageDir string
	// CacheBytes, when positive, gives the node a phone-side chunk
	// cache with that byte budget: acquisitions go through the chunked
	// fetch path and re-leasing an unchanged service moves only the
	// manifest over the network (DESIGN.md §10). Zero disables the
	// cache (every fetch is a legacy cold fetch).
	CacheBytes int64
	// CacheDir persists cached chunks on disk (one file per hash) so
	// the cache survives process restarts. Empty keeps it in memory.
	// Ignored when CacheBytes is zero.
	CacheDir string
	// ChunkBytes overrides the served-artifact chunk size (zero =
	// module.DefaultChunkBytes).
	ChunkBytes int
	// FetchWindow bounds in-flight chunk hashes per request window
	// during chunked fetches (zero = remote.DefaultFetchWindow).
	FetchWindow int
	// StreamWindowBytes sizes the per-stream receive window this node
	// grants to reliable stream senders (zero =
	// remote.DefaultStreamWindow).
	StreamWindowBytes int
	// HideCapabilities withholds the device's input capabilities from
	// the handshake. By default they are announced so the target can
	// tailor what it offers (§3.2: "the device can decide which
	// capabilities to expose to the target device").
	HideCapabilities bool
	// Obs is the telemetry hub for metrics and traces. Nil uses the
	// process-wide obs.Default(); obs.Nop() disables telemetry.
	Obs *obs.Hub
	// Aggregator, when non-nil, makes this node a fleet telemetry sink:
	// its peer announces "metrics.sink" in the hello exchange and folds
	// inbound MetricsReport frames into the aggregator under each
	// sending channel's identity. Hosts set it; phones leave it nil.
	Aggregator *obs.Aggregator
	// MetricsInterval is the cadence on which the node's peer ships its
	// metric registry to peers that announced a metrics sink. Zero
	// selects remote.DefaultMetricsInterval; negative disables shipping.
	MetricsInterval time.Duration
	// Health, when non-nil, starts a health scorer on the node's
	// registry and clock: overload scores are published as gauges,
	// drive adaptive admission shedding (when Admission is set), and
	// are readable through Node.Health — the live signal the optimizer
	// consults before re-placing tiers. A runtime profiler runs
	// alongside it so the heap component stays fresh.
	Health *obs.HealthConfig
	// Clock is the node's time source: invocation timeouts, retries,
	// link reconnection, recovery waits and controller poll tickers all
	// run on it. Nil selects the wall clock; the simulation harness
	// injects a virtual clock.
	Clock clock.Clock
	// Seed derandomizes the node's retry jitter when non-zero (see
	// remote.Config.Seed).
	Seed int64
}

// Node is one AlfredO endpoint: framework, event admin, remote peer and
// renderer registry bundled together.
type Node struct {
	cfg       NodeConfig
	fw        *module.Framework
	events    *event.Admin
	peer      *remote.Peer
	renderers *render.Registry

	// sessions and apps are striped (stripe.Map) so that concurrent
	// connects, closes and app lookups do not serialize on one node
	// lock — the serve-side scaling bottleneck this layout removes.
	sessions *stripe.Map[int64, *Session]
	apps     *stripe.Map[string, *App]

	nextSessID atomic.Int64

	// closeMu orders session admission against Close: adds take the
	// read side, Close flips closed under the write side, so a session
	// is either in the snapshot Close tears down or observes closed.
	closeMu sync.RWMutex
	closed  bool

	// health and profiler run when cfg.Health is set; Close stops them.
	health   *obs.HealthScorer
	profiler *obs.Profiler
}

// NewNode boots a node.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: node requires a name")
	}
	if cfg.Renderers == nil {
		cfg.Renderers = render.NewRegistry()
	}
	if cfg.ProxyCode == nil {
		cfg.ProxyCode = remote.NewProxyCodeRegistry()
	}
	cfg.Obs = cfg.Obs.OrDefault()
	cfg.Clock = clock.Or(cfg.Clock)
	fw := module.NewFramework(module.Config{Name: cfg.Name, StorageDir: cfg.StorageDir})
	events := event.NewAdmin(0)
	var cache *module.ChunkCache
	if cfg.CacheBytes > 0 {
		var err error
		cache, err = module.NewChunkCache(cfg.CacheBytes, cfg.CacheDir)
		if err != nil {
			events.Close()
			_ = fw.Shutdown()
			return nil, fmt.Errorf("core: chunk cache: %w", err)
		}
	}
	helloProps := map[string]any{"profile": cfg.Profile.Name}
	if cfg.Tenant != "" {
		helloProps[remote.HelloTenantProp] = cfg.Tenant
	}
	if !cfg.HideCapabilities {
		caps := make([]string, 0, 4)
		for _, c := range cfg.Profile.Capabilities() {
			caps = append(caps, string(c))
		}
		helloProps["capabilities"] = caps
	}
	peer, err := remote.NewPeer(remote.Config{
		Framework:         fw,
		Events:            events,
		Device:            cfg.Sim,
		ProxyCode:         cfg.ProxyCode,
		Timeout:           cfg.InvokeTimeout,
		Retry:             cfg.Retry,
		ClientInvokeCost:  cfg.ClientInvokeCost,
		DispatchWorkers:   cfg.DispatchWorkers,
		ReactorWorkers:    cfg.ReactorWorkers,
		Admission:         cfg.Admission,
		WriteBufferBytes:  cfg.WriteBufferBytes,
		HelloProps:        helloProps,
		Obs:               cfg.Obs,
		Clock:             cfg.Clock,
		Seed:              cfg.Seed,
		ChunkCache:        cache,
		ChunkBytes:        cfg.ChunkBytes,
		FetchWindow:       cfg.FetchWindow,
		StreamWindowBytes: cfg.StreamWindowBytes,
		Aggregator:        cfg.Aggregator,
		MetricsInterval:   cfg.MetricsInterval,
	})
	if err != nil {
		events.Close()
		_ = fw.Shutdown()
		return nil, err
	}
	n := &Node{
		cfg:       cfg,
		fw:        fw,
		events:    events,
		peer:      peer,
		renderers: cfg.Renderers,
		sessions:  stripe.NewMap[int64, *Session](stripe.DefaultShards(), stripe.Int64Hash),
		apps:      stripe.NewMap[string, *App](stripe.DefaultShards(), stripe.StringHash),
	}
	if cfg.Health != nil {
		// The profiler keeps the heap gauge the scorer reads fresh;
		// both run on the node's clock.
		n.profiler = obs.StartProfiler(cfg.Obs.Metrics, cfg.Clock, cfg.Health.Interval)
		n.health = peer.StartHealthDriver(*cfg.Health)
	}
	return n, nil
}

// Name returns the node name.
func (n *Node) Name() string { return n.cfg.Name }

// Framework returns the node's module framework.
func (n *Node) Framework() *module.Framework { return n.fw }

// Events returns the node's event admin.
func (n *Node) Events() *event.Admin { return n.events }

// Peer returns the node's remote peer.
func (n *Node) Peer() *remote.Peer { return n.peer }

// ChunkCache returns the node's phone-side chunk cache, or nil when
// CacheBytes was zero.
func (n *Node) ChunkCache() *module.ChunkCache { return n.peer.ChunkCache() }

// Profile returns the node's device profile.
func (n *Node) Profile() device.Profile { return n.cfg.Profile }

// Clock returns the node's time source.
func (n *Node) Clock() clock.Clock { return n.cfg.Clock }

// Renderers returns the node's renderer registry.
func (n *Node) Renderers() *render.Registry { return n.renderers }

// App bundles everything a provider registers for one leasable
// application: the descriptor, the main service, and the dependency
// services (logic and data tiers, §3.2).
type App struct {
	// Descriptor is the shippable service description.
	Descriptor *Descriptor
	// Service implements the main service interface.
	Service *remote.MethodTable
	// Dependencies maps dependency interface names to implementations.
	// Every dependency named in the descriptor that the provider hosts
	// must appear here.
	Dependencies map[string]*remote.MethodTable
	// Tenant scopes the app to one tenant: its services carry
	// remote.PropTenant and are visible only to sessions whose
	// handshake announced the same tenant. Empty publishes the app to
	// everyone.
	Tenant string
}

// RegisterApp publishes an application: the main service and all its
// dependency services become exported (leased) services, and the
// descriptor is attached so clients receive it in ServiceReply.
func (n *Node) RegisterApp(app *App) error {
	if app == nil || app.Service == nil || app.Descriptor == nil {
		return fmt.Errorf("core: RegisterApp requires descriptor and service")
	}
	if err := app.Descriptor.Validate(); err != nil {
		return err
	}
	for _, dep := range app.Descriptor.Dependencies {
		if _, ok := app.Dependencies[dep.Service]; !ok {
			return fmt.Errorf("core: app %s declares dependency %s but provides no implementation",
				app.Descriptor.Service, dep.Service)
		}
	}
	descBytes, err := app.Descriptor.Marshal()
	if err != nil {
		return err
	}
	app.Service.WithDescriptor(descBytes)

	n.closeMu.RLock()
	if n.closed {
		n.closeMu.RUnlock()
		return ErrNodeClosed
	}
	dup := false
	n.apps.Update(app.Descriptor.Service, func(old *App, ok bool) (*App, bool) {
		if ok {
			dup = true
			return old, true
		}
		return app, true
	})
	n.closeMu.RUnlock()
	if dup {
		return fmt.Errorf("core: app %s already registered", app.Descriptor.Service)
	}

	appProps := service.Properties{remote.PropExported: true, "alfredo.app": true}
	depProps := service.Properties{remote.PropExported: true, "alfredo.dependency": true}
	if app.Tenant != "" {
		appProps[remote.PropTenant] = app.Tenant
		depProps[remote.PropTenant] = app.Tenant
	}
	reg := n.fw.Registry()
	if _, err := reg.Register([]string{app.Descriptor.Service}, app.Service, appProps, n.cfg.Name); err != nil {
		return err
	}
	for iface, impl := range app.Dependencies {
		if _, err := reg.Register([]string{iface}, impl, depProps, n.cfg.Name); err != nil {
			return err
		}
	}
	return nil
}

// RegisteredApp returns a registered app definition by service name.
func (n *Node) RegisteredApp(name string) (*App, bool) {
	return n.apps.Get(name)
}

// SessionCount returns the number of live client sessions.
func (n *Node) SessionCount() int { return n.sessions.Len() }

// SessionShardCounts returns the per-shard session-table counts; the
// scale suite sums them against the sessions-active gauge to prove no
// session is lost or double-counted across shards.
func (n *Node) SessionShardCounts() []int { return n.sessions.ShardCounts() }

// AppShardCounts returns the per-shard app-registry counts.
func (n *Node) AppShardCounts() []int { return n.apps.ShardCounts() }

// Serve accepts inbound connections on l in the background; close the
// listener to stop.
func (n *Node) Serve(l net.Listener) {
	go func() {
		// Accept errors (listener closed) end the loop; sessions keep
		// running until their channels close.
		_ = n.peer.Serve(l)
	}()
}

// Connect establishes a client session over conn.
func (n *Node) Connect(conn net.Conn) (*Session, error) {
	ch, err := n.peer.Connect(conn)
	if err != nil {
		return nil, err
	}
	s := &Session{
		node:    n,
		id:      n.nextSessID.Add(1),
		ch:      ch,
		apps:    make(map[string]*Application),
		flights: make(map[string]*acquireFlight),
	}
	if err := n.addSession(s); err != nil {
		ch.Close()
		return nil, err
	}
	n.countSessionOpened()
	return s, nil
}

// ConnectResilient establishes a client session over a self-healing
// link: when the transport drops, the link redials within its reconnect
// budget while the session degrades its applications (controls
// disabled) and recovers them — fresh proxy bundles, re-established
// leases — once the link is back up (§3.2). dial must reach the same
// target on every call.
func (n *Node) ConnectResilient(dial remote.Dialer) (*Session, error) {
	link, err := n.peer.DialLink(dial)
	if err != nil {
		return nil, err
	}
	s := &Session{
		node:    n,
		id:      n.nextSessID.Add(1),
		link:    link,
		ch:      link.Channel(),
		apps:    make(map[string]*Application),
		flights: make(map[string]*acquireFlight),
	}
	if err := n.addSession(s); err != nil {
		link.Close()
		return nil, err
	}
	n.countSessionOpened()
	link.OnStateChange(s.onLinkState)
	return s, nil
}

func (n *Node) addSession(s *Session) error {
	n.closeMu.RLock()
	defer n.closeMu.RUnlock()
	if n.closed {
		return ErrNodeClosed
	}
	n.sessions.Store(s.id, s)
	return nil
}

// Footprint returns the installed-bundle footprint in bytes (§4.1).
func (n *Node) Footprint() int { return n.fw.Footprint() }

// Close releases all sessions and platform services.
func (n *Node) Close() {
	n.closeMu.Lock()
	if n.closed {
		n.closeMu.Unlock()
		return
	}
	n.closed = true
	n.closeMu.Unlock()

	if n.health != nil {
		n.health.Stop()
	}
	if n.profiler != nil {
		n.profiler.Stop()
	}
	for _, s := range n.sessions.Values() {
		s.Close()
	}
	n.peer.Close()
	n.events.Close()
	_ = n.fw.Shutdown()
}

func (n *Node) removeSession(s *Session) {
	n.sessions.Delete(s.id)
}
