package core

import (
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/script"
	"github.com/alfredo-mw/alfredo/internal/service"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// TestProviderUpgradeMidSession exercises §3.1's "software as a
// process": the provider upgrades an application while a phone is
// connected. The old lease entry disappears, the new one appears, and a
// fresh acquisition gets the new descriptor — without the phone ever
// reinstalling anything by hand.
func TestProviderUpgradeMidSession(t *testing.T) {
	v := clock.NewVirtual(1)
	provider, err := NewNode(NodeConfig{Name: "target", Profile: device.Notebook(), Clock: v, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, func() { provider.Close() })

	mkApp := func(version string, greeting string) (*App, *service.Registration) {
		svc := remote.NewService("demo.Greeter").
			Method("Greet", nil, "string", func(args []any) (any, error) {
				return greeting, nil
			})
		desc := &Descriptor{
			Service: "demo.Greeter",
			UI: &ui.Description{
				Title: "Greeter " + version,
				Controls: []ui.Control{
					{ID: "msg", Kind: ui.KindLabel, Text: version},
					{ID: "go", Kind: ui.KindButton, Text: "Greet"},
				},
			},
			Controller: &script.Program{Rules: []script.Rule{{
				On: script.Trigger{UI: &script.UITrigger{Control: "go", Kind: ui.EventPress}},
				Do: []script.Action{
					{Invoke: &script.InvokeAction{Method: "Greet"}},
					{SetControl: &script.SetControlAction{Control: "msg", Property: "value", Value: "result"}},
				},
			}}},
		}
		b, err := desc.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		svc.WithDescriptor(b)
		reg, err := provider.Framework().Registry().Register([]string{"demo.Greeter"}, svc,
			service.Properties{remote.PropExported: true, "version": version}, "test")
		if err != nil {
			t.Fatal(err)
		}
		return &App{Descriptor: desc, Service: svc}, reg
	}

	_, regV1 := mkApp("v1", "hello from v1")

	phone, err := NewNode(NodeConfig{Name: "phone", Profile: device.Nokia9300i(), Clock: v, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer driveV(t, v, time.Minute, func() { phone.Close() })

	fabric := netsim.NewFabric().WithClock(v).WithSeed(1)
	l, _ := fabric.Listen("target")
	defer l.Close()
	provider.Serve(l)
	var session *Session
	var appV1 *Application
	driveV(t, v, time.Minute, func() {
		conn, err := fabric.Dial("target", netsim.Loopback)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		s, err := phone.Connect(conn)
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		session = s
		appV1, err = s.Acquire("demo.Greeter", AcquireOptions{})
		if err != nil {
			t.Errorf("Acquire v1: %v", err)
		}
	})
	if session == nil || appV1 == nil {
		t.FailNow()
	}
	defer driveV(t, v, time.Minute, func() { session.Close() })

	driveV(t, v, time.Minute, func() {
		if err := appV1.View.Inject(ui.Event{Control: "go", Kind: ui.EventPress}); err != nil {
			t.Errorf("Inject: %v", err)
		}
	})
	if got, _ := appV1.View.Property("msg", "value"); got != "hello from v1" {
		t.Fatalf("v1 greet = %v", got)
	}

	// The shop owner upgrades the software while the phone is connected.
	driveV(t, v, time.Minute, func() { appV1.Release() })
	if err := regV1.Unregister(); err != nil {
		t.Fatal(err)
	}
	mkApp("v2", "hello from v2")

	// The phone's lease converges on the new registration — driven on
	// the virtual clock instead of sleep-polling the scheduler.
	if !v.WaitCond(2*time.Second, func() bool {
		info, ok := session.Channel().FindRemoteService("demo.Greeter")
		return ok && info.Props["version"] == "v2"
	}) {
		t.Fatal("lease never showed v2")
	}

	// Re-acquiring yields the upgraded descriptor and behaviour.
	var appV2 *Application
	driveV(t, v, time.Minute, func() {
		a, err := session.Acquire("demo.Greeter", AcquireOptions{})
		if err != nil {
			t.Errorf("Acquire v2: %v", err)
			return
		}
		appV2 = a
	})
	if appV2 == nil {
		t.FailNow()
	}
	if appV2.Descriptor.UI.Title != "Greeter v2" {
		t.Errorf("descriptor title = %q", appV2.Descriptor.UI.Title)
	}
	driveV(t, v, time.Minute, func() {
		if err := appV2.View.Inject(ui.Event{Control: "go", Kind: ui.EventPress}); err != nil {
			t.Errorf("Inject: %v", err)
		}
	})
	if got, _ := appV2.View.Property("msg", "value"); got != "hello from v2" {
		t.Errorf("v2 greet = %v", got)
	}
}
