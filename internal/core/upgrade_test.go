package core

import (
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/script"
	"github.com/alfredo-mw/alfredo/internal/service"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// TestProviderUpgradeMidSession exercises §3.1's "software as a
// process": the provider upgrades an application while a phone is
// connected. The old lease entry disappears, the new one appears, and a
// fresh acquisition gets the new descriptor — without the phone ever
// reinstalling anything by hand.
func TestProviderUpgradeMidSession(t *testing.T) {
	provider, err := NewNode(NodeConfig{Name: "target", Profile: device.Notebook()})
	if err != nil {
		t.Fatal(err)
	}
	defer provider.Close()

	mkApp := func(version string, greeting string) (*App, *service.Registration) {
		svc := remote.NewService("demo.Greeter").
			Method("Greet", nil, "string", func(args []any) (any, error) {
				return greeting, nil
			})
		desc := &Descriptor{
			Service: "demo.Greeter",
			UI: &ui.Description{
				Title: "Greeter " + version,
				Controls: []ui.Control{
					{ID: "msg", Kind: ui.KindLabel, Text: version},
					{ID: "go", Kind: ui.KindButton, Text: "Greet"},
				},
			},
			Controller: &script.Program{Rules: []script.Rule{{
				On: script.Trigger{UI: &script.UITrigger{Control: "go", Kind: ui.EventPress}},
				Do: []script.Action{
					{Invoke: &script.InvokeAction{Method: "Greet"}},
					{SetControl: &script.SetControlAction{Control: "msg", Property: "value", Value: "result"}},
				},
			}}},
		}
		b, err := desc.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		svc.WithDescriptor(b)
		reg, err := provider.Framework().Registry().Register([]string{"demo.Greeter"}, svc,
			service.Properties{remote.PropExported: true, "version": version}, "test")
		if err != nil {
			t.Fatal(err)
		}
		return &App{Descriptor: desc, Service: svc}, reg
	}

	_, regV1 := mkApp("v1", "hello from v1")

	phone, err := NewNode(NodeConfig{Name: "phone", Profile: device.Nokia9300i()})
	if err != nil {
		t.Fatal(err)
	}
	defer phone.Close()

	fabric := netsim.NewFabric()
	l, _ := fabric.Listen("target")
	defer l.Close()
	provider.Serve(l)
	conn, _ := fabric.Dial("target", netsim.Loopback)
	session, err := phone.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()

	appV1, err := session.Acquire("demo.Greeter", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := appV1.View.Inject(ui.Event{Control: "go", Kind: ui.EventPress}); err != nil {
		t.Fatal(err)
	}
	if v, _ := appV1.View.Property("msg", "value"); v != "hello from v1" {
		t.Fatalf("v1 greet = %v", v)
	}

	// The shop owner upgrades the software while the phone is connected.
	appV1.Release()
	if err := regV1.Unregister(); err != nil {
		t.Fatal(err)
	}
	mkApp("v2", "hello from v2")

	// The phone's lease converges on the new registration.
	deadline := time.Now().Add(2 * time.Second)
	var newInfo bool
	for time.Now().Before(deadline) {
		if info, ok := session.Channel().FindRemoteService("demo.Greeter"); ok && info.Props["version"] == "v2" {
			newInfo = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !newInfo {
		t.Fatal("lease never showed v2")
	}

	// Re-acquiring yields the upgraded descriptor and behaviour.
	appV2, err := session.Acquire("demo.Greeter", AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if appV2.Descriptor.UI.Title != "Greeter v2" {
		t.Errorf("descriptor title = %q", appV2.Descriptor.UI.Title)
	}
	if err := appV2.View.Inject(ui.Event{Control: "go", Kind: ui.EventPress}); err != nil {
		t.Fatal(err)
	}
	if v, _ := appV2.View.Property("msg", "value"); v != "hello from v2" {
		t.Errorf("v2 greet = %v", v)
	}
}
