package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/event"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/render"
	"github.com/alfredo-mw/alfredo/internal/script"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

// Session errors.
var (
	ErrNoSuchRemoteService = errors.New("core: remote service not offered")
	ErrNoDescriptor        = errors.New("core: remote service ships no AlfredO descriptor")
	ErrAlreadyAcquired     = errors.New("core: service already acquired in this session")
	ErrUnsatisfied         = errors.New("core: device cannot satisfy service requirements")
	// ErrDegraded is returned for invocations on an application whose
	// target is unreachable (link reconnecting past its budget, or
	// terminally down). The UI is disabled, not wedged: the session
	// recovers automatically if the link comes back.
	ErrDegraded = errors.New("core: application degraded: target unreachable")
)

// Timing records the acquisition phases of Tables 1 and 2 plus the
// client-side extras.
type Timing struct {
	// AcquireInterface is the network fetch of interface + descriptor.
	AcquireInterface time.Duration
	// BuildProxy is the proxy bundle synthesis.
	BuildProxy time.Duration
	// InstallProxy is the bundle installation.
	InstallProxy time.Duration
	// StartProxy is the bundle start (incl. app start work).
	StartProxy time.Duration
	// Dependencies is the time spent pulling logic-tier dependencies.
	Dependencies time.Duration
	// RenderUI is the view + controller construction.
	RenderUI time.Duration
}

// TotalStart is the paper's "Total start time" row: the four proxy
// phases.
func (t Timing) TotalStart() time.Duration {
	return t.AcquireInterface + t.BuildProxy + t.InstallProxy + t.StartProxy
}

// AcquireOptions tune one acquisition.
type AcquireOptions struct {
	// Policy decides logic-tier placement; nil means ThinClientPolicy.
	Policy Policy
	// Trusted marks the target device as trusted (enables logic
	// pulling under AdaptivePolicy).
	Trusted bool
	// Renderer forces a specific engine instead of the profile's
	// preference.
	Renderer string
	// SkipUI suppresses view/controller construction (used by
	// benchmarks that only exercise the proxy pipeline).
	SkipUI bool
}

// Application is one leased, running client application: the proxy
// bundle, the rendered View, the interpreted Controller, and the
// pulled dependencies.
type Application struct {
	Interface  string
	Descriptor *Descriptor
	Bundle     *module.Bundle
	Proxy      *remote.DynamicService
	View       render.View
	Controller *script.Controller
	Timing     Timing
	// Placement records the tier negotiation outcome.
	Placement Placement
	// Fetch records how the main interface fetch moved over the wire:
	// cold (full transfer), warm (cache hit, manifest only), delta
	// (changed chunks only) or legacy, with chunk/byte accounting
	// (DESIGN.md §10).
	Fetch remote.FetchStats
	// Deps maps pulled dependency interfaces to their proxies.
	Deps map[string]*remote.DynamicService

	session *Session
	evToks  []int64
	mu      sync.Mutex
	done    bool
	// Live re-placement state (DESIGN.md §13): the epoch-numbered
	// placement route per movable dependency, the single-flight table
	// for concurrent re-placements, dwell stamps for the optimizer's
	// hysteresis, and the optimizers Release must stop.
	routes       map[string]*depRoute
	placeFlights map[string]*placeFlight
	placeEpoch   int64
	lastMove     map[string]moveStamp
	optimizers   []*Optimizer
	// degraded marks the target unreachable; recovered (non-nil only
	// while degraded) is closed when the session re-acquires the lease.
	degraded  bool
	recovered chan struct{}
}

// Session is one client connection to a target device.
type Session struct {
	node *Node
	// id keys this session in the node's striped session table.
	id int64
	// link is non-nil for resilient sessions (ConnectResilient); it
	// owns reconnection and drives degrade/recover transitions.
	link *remote.Link

	mu      sync.Mutex
	ch      *remote.Channel
	apps    map[string]*Application
	flights map[string]*acquireFlight
	closed  bool
}

// acquireFlight coalesces concurrent Acquire calls for one interface:
// the first caller runs the acquisition, later callers block on done
// and share its outcome instead of racing a second fetch over the link.
type acquireFlight struct {
	done chan struct{}
	app  *Application
	err  error
}

// channel returns the current channel (it changes on reconnection).
func (s *Session) channel() *remote.Channel {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ch
}

// Channel exposes the underlying remote channel.
func (s *Session) Channel() *remote.Channel { return s.channel() }

// Link returns the resilient link backing this session (nil for plain
// Connect sessions).
func (s *Session) Link() *remote.Link { return s.link }

// RemoteID returns the target device's identity.
func (s *Session) RemoteID() string { return s.channel().RemoteID() }

// Services lists what the target device offers (the lease contents).
func (s *Session) Services() []wire.ServiceInfo { return s.channel().RemoteServices() }

// Ping measures the link round-trip time.
func (s *Session) Ping() (time.Duration, error) { return s.channel().Ping() }

// Acquire leases the client side of the named service: it fetches the
// interface and descriptor, builds/installs/starts the proxy bundle
// (each phase timed — the rows of Tables 1 and 2), negotiates logic
// placement, renders the UI for this node's device profile, and starts
// the interpreted controller.
func (s *Session) Acquire(iface string, opts AcquireOptions) (*Application, error) {
	return s.AcquireCtx(context.Background(), iface, opts)
}

// AcquireCtx is Acquire with a caller context. The whole acquisition
// runs under one "core.acquire" span — the network fetches inside it
// (interface fetch, dependency pulls) become child spans on both peers
// — and the phase timings land in the acquire-phase histograms.
func (s *Session) AcquireCtx(ctx context.Context, iface string, opts AcquireOptions) (*Application, error) {
	hub := s.obsHub()
	start := time.Now()
	ctx, span := hub.Tracer.Start(ctx, "core.acquire")
	if span != nil {
		span.SetAttr("app", iface)
		span.SetAttr("node", s.node.Name())
	}
	app, err := s.acquire(ctx, iface, opts)
	hub.Metrics.Counter("alfredo_core_acquisitions_total").Inc()
	if err != nil {
		hub.Metrics.Counter("alfredo_core_acquire_errors_total").Inc()
		span.Fail(err)
	} else {
		s.observeAcquire(app)
	}
	hub.Metrics.Histogram("alfredo_core_acquire_wall_seconds").ObserveSince(start)
	span.Finish()
	return app, err
}

func (s *Session) acquire(ctx context.Context, iface string, opts AcquireOptions) (*Application, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, remote.ErrChannelClosed
	}
	if _, dup := s.apps[iface]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrAlreadyAcquired, iface)
	}
	if f, inflight := s.flights[iface]; inflight {
		s.mu.Unlock()
		select {
		case <-f.done:
			return f.app, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &acquireFlight{done: make(chan struct{})}
	s.flights[iface] = f
	s.mu.Unlock()

	app, err := s.doAcquire(ctx, iface, opts)
	f.app, f.err = app, err
	s.mu.Lock()
	delete(s.flights, iface)
	s.mu.Unlock()
	close(f.done)
	return app, err
}

func (s *Session) doAcquire(ctx context.Context, iface string, opts AcquireOptions) (*Application, error) {
	info, ok := s.channel().FindRemoteService(iface)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchRemoteService, iface)
	}

	app := &Application{Interface: iface, session: s, Deps: make(map[string]*remote.DynamicService)}
	app.ensurePlacement()

	// Phase 1: acquire service interface (+ descriptor) over the link.
	// The chunked fetch path consults the node's chunk cache first: an
	// unchanged service re-lease moves only the manifest (warm start),
	// a changed one moves only the changed chunks (delta).
	start := time.Now()
	reply, fstats, err := s.channel().AcquireFetch(ctx, info.ID)
	if err != nil {
		return nil, err
	}
	app.Fetch = fstats
	app.Timing.AcquireInterface = time.Since(start)

	if len(reply.Descriptor) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoDescriptor, iface)
	}
	desc, err := UnmarshalDescriptor(reply.Descriptor)
	if err != nil {
		return nil, err
	}
	app.Descriptor = desc

	// Requirements gate: the presentation tier must fit this device.
	if ok, missing := s.node.Profile().Satisfies(desc.Requirements.Capabilities); !ok {
		return nil, fmt.Errorf("%w: %s needs %v", ErrUnsatisfied, iface, missing)
	}

	// Phase 2: build the proxy bundle.
	start = time.Now()
	pb, err := s.channel().BuildProxy(reply)
	if err != nil {
		return nil, err
	}
	pb.SetStartWork(desc.StartWork())
	app.Timing.BuildProxy = time.Since(start)

	// Phase 3: install it.
	start = time.Now()
	s.node.cfg.Sim.InstallBundle()
	bundle, err := s.node.fw.InstallDynamic(pb.Archive, pb.Activator)
	if err != nil {
		return nil, err
	}
	app.Timing.InstallProxy = time.Since(start)

	// Phase 4: start it (registers the proxy service locally).
	start = time.Now()
	if err := bundle.Start(); err != nil {
		_ = bundle.Uninstall()
		return nil, err
	}
	app.Timing.StartProxy = time.Since(start)
	s.channel().TrackProxy(bundle)
	app.Bundle = bundle
	app.Proxy = pb.Service

	// Tier negotiation (§3.2).
	if err := s.pullDependencies(ctx, app, opts); err != nil {
		app.Release()
		return nil, err
	}

	// View + Controller (§3.3, Fig. 2).
	if !opts.SkipUI {
		start = time.Now()
		if err := s.buildUI(app, opts); err != nil {
			app.Release()
			return nil, err
		}
		app.Timing.RenderUI = time.Since(start)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		app.Release()
		return nil, remote.ErrChannelClosed
	}
	s.apps[iface] = app
	s.mu.Unlock()
	// Ship the merged event-pattern set now that the app is listed.
	s.updateRemoteSubscriptions()
	return app, nil
}

// pullDependencies runs the distribution policy and acquires proxies
// for the logic-tier dependencies it decides to move.
func (s *Session) pullDependencies(ctx context.Context, app *Application, opts AcquireOptions) error {
	policy := opts.Policy
	if policy == nil {
		policy = ThinClientPolicy{}
	}
	movable := false
	for _, dep := range app.Descriptor.Dependencies {
		if dep.Movable {
			movable = true
			break
		}
	}
	pctx := PolicyContext{
		Profile:      s.node.Profile(),
		FreeMemoryKB: s.node.cfg.FreeMemoryKB,
		CPUMHz:       s.node.cfg.CPUMHz,
		Trusted:      opts.Trusted,
	}
	if movable {
		if rtt, err := s.channel().Ping(); err == nil {
			pctx.LinkRTT = rtt
		}
	}
	app.Placement = policy.Decide(app.Descriptor, pctx)
	s.countPlacement(len(app.Placement.PullLogic))

	start := time.Now()
	for _, depIface := range app.Placement.PullLogic {
		info, ok := s.channel().FindRemoteService(depIface)
		if !ok {
			return fmt.Errorf("%w: dependency %s", ErrNoSuchRemoteService, depIface)
		}
		reply, _, err := s.channel().AcquireFetch(ctx, info.ID)
		if err != nil {
			return fmt.Errorf("core: pulling dependency %s: %w", depIface, err)
		}
		b, proxy, err := s.channel().InstallProxy(reply)
		if err != nil {
			return fmt.Errorf("core: installing dependency %s: %w", depIface, err)
		}
		// Route the dependency through its acquire-time placement; the
		// optimizer re-places it live from here on. The policy already
		// recorded the reason, so keep it.
		app.installLocalRoute(depIface, proxy, b, s.channel(), "")
	}
	app.Timing.Dependencies = time.Since(start)
	return nil
}

// buildUI renders the view and starts the controller.
func (s *Session) buildUI(app *Application, opts AcquireOptions) error {
	var engine render.Renderer
	var err error
	if opts.Renderer != "" {
		var ok bool
		engine, ok = s.node.renderers.Lookup(opts.Renderer)
		if !ok {
			return fmt.Errorf("%w: %s", render.ErrUnknownRenderer, opts.Renderer)
		}
	} else {
		engine, err = s.node.renderers.ForProfile(s.node.Profile())
		if err != nil {
			return err
		}
	}
	view, err := engine.Render(app.Descriptor.UI, s.node.Profile())
	if err != nil {
		return err
	}
	app.View = view

	prog := app.Descriptor.Controller
	if prog == nil {
		prog = &script.Program{}
	}
	controller, err := script.NewController(prog, &sessionHost{app: app})
	if err != nil {
		_ = view.Close()
		return err
	}
	controller.WithClock(s.node.cfg.Clock)
	if err := controller.Start(); err != nil {
		_ = view.Close()
		return err
	}
	app.Controller = controller
	view.OnEvent(controller.OnUIEvent)

	// Remote event plumbing: subscribe locally for each pattern the
	// controller listens to, and tell the peer to forward them.
	patterns := controller.EventPatterns()
	for _, pat := range patterns {
		tok, err := s.node.events.Subscribe(pat, nil, func(ev event.Event) {
			controller.OnRemoteEvent(ev.Topic, ev.Properties)
		})
		if err == nil {
			app.evToks = append(app.evToks, tok)
		}
	}
	return nil
}

// updateRemoteSubscriptions merges the event patterns of all running
// applications and ships them to the peer.
func (s *Session) updateRemoteSubscriptions() {
	set := make(map[string]bool)
	s.mu.Lock()
	apps := make([]*Application, 0, len(s.apps)+1)
	for _, a := range s.apps {
		apps = append(apps, a)
	}
	s.mu.Unlock()
	var patterns []string
	for _, a := range apps {
		if a.Controller == nil {
			continue
		}
		for _, p := range a.Controller.EventPatterns() {
			if !set[p] {
				set[p] = true
				patterns = append(patterns, p)
			}
		}
	}
	_ = s.channel().SetRemoteSubscriptions(patterns)
}

// Apps returns the currently acquired applications.
func (s *Session) Apps() []*Application {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Application, 0, len(s.apps))
	for _, a := range s.apps {
		out = append(out, a)
	}
	return out
}

// Close releases all applications and the channel.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	apps := make([]*Application, 0, len(s.apps))
	for _, a := range s.apps {
		apps = append(apps, a)
	}
	s.apps = map[string]*Application{}
	s.mu.Unlock()

	for _, a := range apps {
		a.release(false)
	}
	// Closing the link also closes its current channel; watchers run on
	// the link's monitor goroutine, so s.mu must not be held here.
	if s.link != nil {
		s.link.Close()
	} else {
		s.channel().Close()
	}
	s.node.removeSession(s)
	s.node.countSessionClosed()
}

// Release ends the interaction: the controller stops, the view closes,
// and the proxy bundle is uninstalled immediately (§4.1: proxies are
// never cached).
func (a *Application) Release() {
	a.release(true)
}

func (a *Application) release(unlist bool) {
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return
	}
	a.done = true
	a.mu.Unlock()

	if a.Controller != nil {
		a.Controller.Stop()
	}
	if a.View != nil {
		_ = a.View.Close()
	}
	for _, tok := range a.evToks {
		a.session.node.events.Unsubscribe(tok)
	}
	// Stop attached optimizers and retire the dependency routes: no
	// placement machinery outlives the interaction (§4.1).
	a.teardownPlacement()
	if a.Bundle != nil && a.Bundle.State() != module.StateUninstalled {
		_ = a.Bundle.Uninstall()
	}
	if unlist {
		a.session.mu.Lock()
		delete(a.session.apps, a.Interface)
		a.session.mu.Unlock()
		a.session.updateRemoteSubscriptions()
	}
}

// Invoke calls a method on the application's main service through the
// proxy. While the session is degraded (target unreachable, link
// reconnecting) the call waits for recovery up to the link's reconnect
// budget; a terminally down link yields ErrDegraded immediately.
func (a *Application) Invoke(method string, args ...any) (any, error) {
	return a.InvokeCtx(context.Background(), method, args...)
}

// InvokeCtx is Invoke with a caller context. Each call is the root of
// an "app.invoke" span (unless ctx already carries one), so a single
// user action shows up as one trace spanning proxy, wire, and the
// target's serve-side spans.
func (a *Application) InvokeCtx(ctx context.Context, method string, args ...any) (any, error) {
	hub := a.session.obsHub()
	ctx, span := hub.Tracer.Start(ctx, "app.invoke")
	if span != nil {
		span.SetAttr("app", a.Interface)
		span.SetAttr("method", method)
	}
	res, err := a.invokeCtx(ctx, method, args)
	span.Fail(err)
	span.Finish()
	return res, err
}

func (a *Application) invokeCtx(ctx context.Context, method string, args []any) (any, error) {
	if err := a.awaitUsable(); err != nil {
		return nil, err
	}
	a.mu.Lock()
	proxy := a.Proxy
	a.mu.Unlock()
	return proxy.InvokeCtx(ctx, method, args)
}

// awaitUsable blocks while the application is degraded, until the
// session recovers it or the recovery window closes.
func (a *Application) awaitUsable() error {
	a.mu.Lock()
	degraded, recovered := a.degraded, a.recovered
	a.mu.Unlock()
	if !degraded {
		return nil
	}
	link := a.session.link
	if link == nil || recovered == nil {
		return ErrDegraded
	}
	deadline := a.session.node.cfg.Clock.NewTimer(link.Policy().ReconnectBudget)
	defer deadline.Stop()
	for {
		st, wait := link.StateAndWait()
		if st == remote.LinkDown || st == remote.LinkClosed {
			return fmt.Errorf("%w: %s", ErrDegraded, st)
		}
		select {
		case <-recovered:
			return nil
		case <-wait:
		case <-deadline.C:
			return fmt.Errorf("%w: not recovered within %v", ErrDegraded, link.Policy().ReconnectBudget)
		}
	}
}

// Degraded reports whether the application is currently degraded.
func (a *Application) Degraded() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.degraded
}

// isReleased reports whether Release has run.
func (a *Application) isReleased() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.done
}

// isClosed reports whether the session has been closed.
func (s *Session) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// sessionHost is the sandbox surface handed to the controller (§3.2):
// it can reach the session's services, the application's own view, and
// the event bus — nothing else on the device.
type sessionHost struct {
	app *Application
}

var _ script.Host = (*sessionHost)(nil)

func (h *sessionHost) Invoke(service, method string, args []any) (any, error) {
	app := h.app
	if service == "" || service == app.Interface {
		return app.Proxy.Invoke(method, args)
	}
	// A declared dependency routes through its live placement — the
	// local proxy while the logic tier is pulled (possibly smart, i.e.
	// locally executing), the target otherwise. The controller cannot
	// tell the difference: tier placement is transparent, and a
	// re-placement concurrent with the call is lossless (DESIGN.md §13).
	if app.findDependency(service) != nil {
		return app.invokeDependency(service, method, args)
	}
	// Undeclared services are invoked directly on the target.
	if info, ok := app.session.channel().FindRemoteService(service); ok {
		return app.session.channel().Invoke(info.ID, method, args)
	}
	return nil, fmt.Errorf("%w: %s", ErrNoSuchRemoteService, service)
}

func (h *sessionHost) SetControl(controlID, property string, value any) error {
	if h.app.View == nil {
		return render.ErrViewClosed
	}
	return h.app.View.SetProperty(controlID, property, value)
}

func (h *sessionHost) ControlValue(controlID string) (any, bool) {
	if h.app.View == nil {
		return nil, false
	}
	return h.app.View.Property(controlID, "value")
}

func (h *sessionHost) Post(topic string, props map[string]any) error {
	return h.app.session.node.events.Post(event.Event{Topic: topic, Properties: props})
}
