package core_test

import (
	"fmt"

	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/script"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// Example shows the complete provider/client round trip: register an
// application on a target device, lease it from a phone, drive the
// rendered UI, and release it.
func Example() {
	// --- Target device side. ---
	lamp := remote.NewService("demo.Lamp").
		Method("Toggle", nil, "string", func(args []any) (any, error) {
			return "light is on", nil
		})
	app := &core.App{
		Descriptor: &core.Descriptor{
			Service: "demo.Lamp",
			UI: &ui.Description{
				Title: "Lamp",
				Controls: []ui.Control{
					{ID: "toggle", Kind: ui.KindButton, Text: "Toggle"},
					{ID: "state", Kind: ui.KindLabel, Text: "unknown"},
				},
			},
			Controller: &script.Program{Rules: []script.Rule{{
				On: script.Trigger{UI: &script.UITrigger{Control: "toggle", Kind: ui.EventPress}},
				Do: []script.Action{
					{Invoke: &script.InvokeAction{Method: "Toggle"}},
					{SetControl: &script.SetControlAction{Control: "state", Property: "value", Value: "result"}},
				},
			}}},
		},
		Service: lamp,
	}
	target, err := core.NewNode(core.NodeConfig{Name: "lamp", Profile: device.Touchscreen()})
	if err != nil {
		fmt.Println("node:", err)
		return
	}
	defer target.Close()
	if err := target.RegisterApp(app); err != nil {
		fmt.Println("register:", err)
		return
	}

	// --- Phone side. ---
	fabric := netsim.NewFabric()
	l, _ := fabric.Listen("lamp")
	defer l.Close()
	target.Serve(l)

	phone, err := core.NewNode(core.NodeConfig{Name: "phone", Profile: device.Nokia9300i()})
	if err != nil {
		fmt.Println("node:", err)
		return
	}
	defer phone.Close()
	conn, _ := fabric.Dial("lamp", netsim.Loopback)
	session, err := phone.Connect(conn)
	if err != nil {
		fmt.Println("connect:", err)
		return
	}
	defer session.Close()

	acquired, err := session.Acquire("demo.Lamp", core.AcquireOptions{})
	if err != nil {
		fmt.Println("acquire:", err)
		return
	}
	_ = acquired.View.Inject(ui.Event{Control: "toggle", Kind: ui.EventPress})
	state, _ := acquired.View.Property("state", "value")
	fmt.Println(state)
	acquired.Release()
	// Output: light is on
}
