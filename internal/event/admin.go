// Package event implements a topic-based publish/subscribe service, the
// OSGi EventAdmin analog. AlfredO uses it for asynchronous non-blocking
// interactions (paper §2.1): the remote layer forwards posted events to
// peers that registered a handler for the topic.
//
// Topics are hierarchical, slash-separated strings such as
// "alfredo/mouse/snapshot". Subscriptions may end in "/*" to match a
// whole subtree, or be the single token "*" to match everything.
package event

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/filter"
)

// Event admin errors.
var (
	ErrBadTopic    = errors.New("event: malformed topic")
	ErrAdminClosed = errors.New("event: admin closed")
)

// Event is an immutable notification published on a topic.
type Event struct {
	Topic      string
	Properties map[string]any
	Time       time.Time
}

// Property returns a single event property.
func (e Event) Property(key string) (any, bool) {
	v, ok := e.Properties[key]
	return v, ok
}

// Handler consumes events. Handlers registered for asynchronous
// delivery run on the admin's dispatch goroutine and must not block
// indefinitely.
type Handler func(Event)

type sub struct {
	tok     int64
	pattern string
	flt     *filter.Filter
	h       Handler
}

// Admin routes events from publishers to topic subscribers. Create with
// NewAdmin and release with Close.
type Admin struct {
	mu     sync.Mutex
	subs   map[int64]*sub
	next   int64
	closed bool

	queue chan Event
	wg    sync.WaitGroup
}

// NewAdmin creates an event admin with an asynchronous delivery queue
// of the given depth (a sensible default is used when depth <= 0).
func NewAdmin(depth int) *Admin {
	if depth <= 0 {
		depth = 256
	}
	a := &Admin{
		subs:  make(map[int64]*sub),
		queue: make(chan Event, depth),
	}
	a.wg.Add(1)
	go a.dispatchLoop()
	return a
}

func (a *Admin) dispatchLoop() {
	defer a.wg.Done()
	for ev := range a.queue {
		a.deliver(ev)
	}
}

// Subscribe registers a handler for topics matching pattern, optionally
// constrained by a property filter. It returns a token for Unsubscribe.
func (a *Admin) Subscribe(pattern string, flt *filter.Filter, h Handler) (int64, error) {
	if err := ValidatePattern(pattern); err != nil {
		return 0, err
	}
	if h == nil {
		return 0, fmt.Errorf("event: nil handler for pattern %q", pattern)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return 0, ErrAdminClosed
	}
	a.next++
	a.subs[a.next] = &sub{tok: a.next, pattern: pattern, flt: flt, h: h}
	return a.next, nil
}

// Unsubscribe removes a subscription; unknown tokens are ignored.
func (a *Admin) Unsubscribe(tok int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.subs, tok)
}

// Subscriptions returns the patterns of all current subscriptions
// (with duplicates), sorted. The remote layer uses this to tell peers
// which topics to forward.
func (a *Admin) Subscriptions() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.subs))
	for _, s := range a.subs {
		out = append(out, s.pattern)
	}
	sort.Strings(out)
	return out
}

// Post delivers the event asynchronously, preserving per-admin posting
// order. It blocks only when the queue is full.
func (a *Admin) Post(ev Event) error {
	if err := ValidateTopic(ev.Topic); err != nil {
		return err
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	a.mu.Lock()
	closed := a.closed
	a.mu.Unlock()
	if closed {
		return ErrAdminClosed
	}
	a.queue <- ev
	return nil
}

// Send delivers the event synchronously: all matching handlers have run
// when Send returns.
func (a *Admin) Send(ev Event) error {
	if err := ValidateTopic(ev.Topic); err != nil {
		return err
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	a.mu.Lock()
	closed := a.closed
	a.mu.Unlock()
	if closed {
		return ErrAdminClosed
	}
	a.deliver(ev)
	return nil
}

// Close stops the dispatcher after draining queued events. Posting or
// subscribing afterwards fails with ErrAdminClosed.
func (a *Admin) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	close(a.queue)
	a.wg.Wait()
}

func (a *Admin) deliver(ev Event) {
	a.mu.Lock()
	matches := make([]*sub, 0, 4)
	for _, s := range a.subs {
		if TopicMatches(s.pattern, ev.Topic) && (s.flt == nil || s.flt.Matches(ev.Properties)) {
			matches = append(matches, s)
		}
	}
	a.mu.Unlock()

	sort.Slice(matches, func(i, j int) bool { return matches[i].tok < matches[j].tok })
	for _, s := range matches {
		s.h(ev)
	}
}

// ValidateTopic checks a concrete (wildcard-free) topic.
func ValidateTopic(topic string) error {
	if topic == "" {
		return fmt.Errorf("%w: empty topic", ErrBadTopic)
	}
	if strings.Contains(topic, "*") {
		return fmt.Errorf("%w: wildcards not allowed in published topics (%q)", ErrBadTopic, topic)
	}
	return validateSegments(topic)
}

// ValidatePattern checks a subscription pattern: a concrete topic, a
// subtree pattern ending in "/*", or the catch-all "*".
func ValidatePattern(pattern string) error {
	if pattern == "*" {
		return nil
	}
	if pattern == "" {
		return fmt.Errorf("%w: empty pattern", ErrBadTopic)
	}
	base := pattern
	if strings.HasSuffix(pattern, "/*") {
		base = pattern[:len(pattern)-2]
	}
	if strings.Contains(base, "*") {
		return fmt.Errorf("%w: wildcard only allowed as final segment (%q)", ErrBadTopic, pattern)
	}
	return validateSegments(base)
}

func validateSegments(topic string) error {
	for _, seg := range strings.Split(topic, "/") {
		if seg == "" {
			return fmt.Errorf("%w: empty segment in %q", ErrBadTopic, topic)
		}
	}
	return nil
}

// TopicMatches reports whether a concrete topic matches a subscription
// pattern.
func TopicMatches(pattern, topic string) bool {
	if pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, "/*") {
		prefix := pattern[:len(pattern)-1] // keep the slash
		return strings.HasPrefix(topic, prefix)
	}
	return pattern == topic
}
