package event

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/alfredo-mw/alfredo/internal/filter"
)

func newTestAdmin(t *testing.T) *Admin {
	t.Helper()
	a := NewAdmin(0)
	t.Cleanup(a.Close)
	return a
}

func TestSendSync(t *testing.T) {
	a := newTestAdmin(t)
	var got []string
	_, err := a.Subscribe("alfredo/ui/*", nil, func(ev Event) {
		got = append(got, ev.Topic)
	})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if err := a.Send(Event{Topic: "alfredo/ui/click"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := a.Send(Event{Topic: "alfredo/net/drop"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if len(got) != 1 || got[0] != "alfredo/ui/click" {
		t.Errorf("got %v, want [alfredo/ui/click]", got)
	}
}

func TestPostAsyncOrdered(t *testing.T) {
	a := newTestAdmin(t)
	var mu sync.Mutex
	var got []string
	done := make(chan struct{})
	const n = 20
	_, _ = a.Subscribe("seq/*", nil, func(ev Event) {
		mu.Lock()
		got = append(got, ev.Topic)
		if len(got) == n {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		if err := a.Post(Event{Topic: "seq/" + string(rune('a'+i))}); err != nil {
			t.Fatalf("Post: %v", err)
		}
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for async delivery")
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("delivery out of order: %v", got)
		}
	}
}

func TestWildcardSemantics(t *testing.T) {
	cases := []struct {
		pattern, topic string
		want           bool
	}{
		{"*", "anything/at/all", true},
		{"a/b", "a/b", true},
		{"a/b", "a/b/c", false},
		{"a/*", "a/b", true},
		{"a/*", "a/b/c", true},
		{"a/*", "a", false},
		{"a/*", "ab/c", false},
	}
	for _, c := range cases {
		if got := TopicMatches(c.pattern, c.topic); got != c.want {
			t.Errorf("TopicMatches(%q, %q) = %v, want %v", c.pattern, c.topic, got, c.want)
		}
	}
}

func TestSubscriptionFilter(t *testing.T) {
	a := newTestAdmin(t)
	var hits int
	_, _ = a.Subscribe("m/*", filter.MustParse("(severity>=3)"), func(ev Event) { hits++ })
	_ = a.Send(Event{Topic: "m/x", Properties: map[string]any{"severity": 1}})
	_ = a.Send(Event{Topic: "m/x", Properties: map[string]any{"severity": 5}})
	if hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
}

func TestUnsubscribe(t *testing.T) {
	a := newTestAdmin(t)
	var hits int
	tok, _ := a.Subscribe("t", nil, func(ev Event) { hits++ })
	_ = a.Send(Event{Topic: "t"})
	a.Unsubscribe(tok)
	_ = a.Send(Event{Topic: "t"})
	if hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
}

func TestHandlerOrderStable(t *testing.T) {
	a := newTestAdmin(t)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		_, _ = a.Subscribe("o", nil, func(ev Event) { got = append(got, i) })
	}
	_ = a.Send(Event{Topic: "o"})
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("handlers ran out of subscription order: %v", got)
		}
	}
}

func TestValidation(t *testing.T) {
	a := newTestAdmin(t)
	badTopics := []string{"", "a//b", "a/*", "*", "/a", "a/"}
	for _, topic := range badTopics {
		if err := a.Send(Event{Topic: topic}); !errors.Is(err, ErrBadTopic) {
			t.Errorf("Send(%q) = %v, want ErrBadTopic", topic, err)
		}
	}
	badPatterns := []string{"", "a/*/b", "*a", "a//*"}
	for _, p := range badPatterns {
		if _, err := a.Subscribe(p, nil, func(Event) {}); !errors.Is(err, ErrBadTopic) {
			t.Errorf("Subscribe(%q) = %v, want ErrBadTopic", p, err)
		}
	}
	if _, err := a.Subscribe("ok", nil, nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestCloseSemantics(t *testing.T) {
	a := NewAdmin(0)
	delivered := make(chan struct{}, 8)
	_, _ = a.Subscribe("c", nil, func(ev Event) { delivered <- struct{}{} })
	_ = a.Post(Event{Topic: "c"})
	a.Close()
	// Queued events are drained before Close returns.
	select {
	case <-delivered:
	default:
		t.Error("queued event lost on Close")
	}
	if err := a.Post(Event{Topic: "c"}); !errors.Is(err, ErrAdminClosed) {
		t.Errorf("Post after Close = %v", err)
	}
	if err := a.Send(Event{Topic: "c"}); !errors.Is(err, ErrAdminClosed) {
		t.Errorf("Send after Close = %v", err)
	}
	if _, err := a.Subscribe("c", nil, func(Event) {}); !errors.Is(err, ErrAdminClosed) {
		t.Errorf("Subscribe after Close = %v", err)
	}
	a.Close() // idempotent
}

func TestEventTimestampDefaulted(t *testing.T) {
	a := newTestAdmin(t)
	var ts time.Time
	_, _ = a.Subscribe("ts", nil, func(ev Event) { ts = ev.Time })
	before := time.Now()
	_ = a.Send(Event{Topic: "ts"})
	if ts.Before(before) || time.Since(ts) > time.Second {
		t.Errorf("timestamp not defaulted sensibly: %v", ts)
	}
}

func TestSubscriptions(t *testing.T) {
	a := newTestAdmin(t)
	_, _ = a.Subscribe("b/*", nil, func(Event) {})
	_, _ = a.Subscribe("a", nil, func(Event) {})
	subs := a.Subscriptions()
	if len(subs) != 2 || subs[0] != "a" || subs[1] != "b/*" {
		t.Errorf("Subscriptions = %v", subs)
	}
}

func TestPropertyExactTopicAlwaysMatchesItself(t *testing.T) {
	prop := func(segs []uint8) bool {
		if len(segs) == 0 || len(segs) > 6 {
			return true
		}
		topic := ""
		for i, s := range segs {
			if i > 0 {
				topic += "/"
			}
			topic += string(rune('a' + s%26))
		}
		if ValidateTopic(topic) != nil {
			return false
		}
		return TopicMatches(topic, topic) && TopicMatches("*", topic)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertySubtreePatternMatchesChildren(t *testing.T) {
	prop := func(a, b uint8) bool {
		parent := "p" + string(rune('a'+a%26))
		child := parent + "/" + "c" + string(rune('a'+b%26))
		return TopicMatches(parent+"/*", child) && !TopicMatches(parent+"/*", parent)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	a := newTestAdmin(t)
	var wg sync.WaitGroup
	var mu sync.Mutex
	count := 0
	_, _ = a.Subscribe("load/*", nil, func(Event) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	const workers, each = 8, 25
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := a.Post(Event{Topic: "load/x"}); err != nil {
					t.Errorf("Post: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		c := count
		mu.Unlock()
		if c == workers*each {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d", c, workers*each)
		}
		time.Sleep(time.Millisecond)
	}
}
