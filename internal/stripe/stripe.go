// Package stripe provides lock-striped hash maps for the serve-side
// hot paths. A single mutex around a session or service table serializes
// every connected phone on one cache line; striping spreads the table
// over a power-of-two number of shards, each with its own lock, so
// lookups and inserts for different keys proceed in parallel. The
// package is a leaf (standard library only) so both internal/core and
// internal/remote can use it without import cycles.
package stripe

import (
	"runtime"
	"sync"
)

// DefaultShards picks a power-of-two shard count sized to the machine:
// enough shards that concurrent sessions rarely collide on a lock, few
// enough that per-map overhead stays trivial on a phone-class node.
func DefaultShards() int {
	n := ceilPow2(4 * runtime.GOMAXPROCS(0))
	if n < 8 {
		n = 8
	}
	if n > 256 {
		n = 256
	}
	return n
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Int64Hash mixes an int64 key (service ids, session ids, channel ids
// are small sequential integers — without mixing they would all land in
// the first few shards).
func Int64Hash(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// StringHash is FNV-1a over the key bytes.
func StringHash(k string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime64
	}
	return h
}

type shard[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]V
	// Pad each shard to its own cache line so neighboring shard locks
	// do not false-share under contention.
	_ [40]byte
}

// Map is a hash map striped over power-of-two shards with per-shard
// read-write locks. The zero value is not usable; construct with NewMap.
type Map[K comparable, V any] struct {
	hash   func(K) uint64
	shards []shard[K, V]
	mask   uint64
}

// NewMap creates a striped map with the given shard count (rounded up
// to a power of two; values < 1 select DefaultShards) and hash
// function.
func NewMap[K comparable, V any](shards int, hash func(K) uint64) *Map[K, V] {
	if shards < 1 {
		shards = DefaultShards()
	}
	shards = ceilPow2(shards)
	m := &Map[K, V]{
		hash:   hash,
		shards: make([]shard[K, V], shards),
		mask:   uint64(shards - 1),
	}
	for i := range m.shards {
		m.shards[i].m = make(map[K]V)
	}
	return m
}

func (m *Map[K, V]) shardFor(k K) *shard[K, V] {
	return &m.shards[m.hash(k)&m.mask]
}

// Get returns the value stored under k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	s := m.shardFor(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// Store sets the value under k, replacing any previous value.
func (m *Map[K, V]) Store(k K, v V) {
	s := m.shardFor(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// Delete removes k and returns the previous value, if any.
func (m *Map[K, V]) Delete(k K) (V, bool) {
	s := m.shardFor(k)
	s.mu.Lock()
	v, ok := s.m[k]
	if ok {
		delete(s.m, k)
	}
	s.mu.Unlock()
	return v, ok
}

// Update atomically mutates the entry under k while holding its shard
// lock: fn receives the current value (and whether it exists) and
// returns the new value and whether to keep it — returning keep=false
// deletes the entry. Update returns fn's results. Use it for
// read-modify-write flows (duplicate-checked insert, conditional
// retract) that a Get/Store pair would race.
func (m *Map[K, V]) Update(k K, fn func(old V, ok bool) (V, bool)) (V, bool) {
	s := m.shardFor(k)
	s.mu.Lock()
	old, ok := s.m[k]
	v, keep := fn(old, ok)
	if keep {
		s.m[k] = v
	} else if ok {
		delete(s.m, k)
	}
	s.mu.Unlock()
	return v, keep
}

// Len returns the total entry count (sum over shards; each shard is
// read under its own lock, so concurrent mutation may be partially
// observed — exact when quiescent).
func (m *Map[K, V]) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// ShardCounts returns the per-shard entry counts. The simulation
// harness sums these against the global gauges to prove no entry is
// lost or double-counted across shards.
func (m *Map[K, V]) ShardCounts() []int {
	out := make([]int, len(m.shards))
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		out[i] = len(s.m)
		s.mu.RUnlock()
	}
	return out
}

// Range calls fn for each entry until fn returns false. Each shard is
// snapshotted under its read lock before fn runs, so fn may call back
// into the map without deadlocking.
func (m *Map[K, V]) Range(fn func(k K, v V) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		keys := make([]K, 0, len(s.m))
		vals := make([]V, 0, len(s.m))
		for k, v := range s.m {
			keys = append(keys, k)
			vals = append(vals, v)
		}
		s.mu.RUnlock()
		for j := range keys {
			if !fn(keys[j], vals[j]) {
				return
			}
		}
	}
}

// Values snapshots all values.
func (m *Map[K, V]) Values() []V {
	out := make([]V, 0, m.Len())
	m.Range(func(_ K, v V) bool {
		out = append(out, v)
		return true
	})
	return out
}
