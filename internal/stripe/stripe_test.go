package stripe

import (
	"sync"
	"testing"
)

func TestBasicOps(t *testing.T) {
	m := NewMap[int64, string](8, Int64Hash)
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map returned a value")
	}
	m.Store(1, "a")
	m.Store(2, "b")
	if v, ok := m.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if v, ok := m.Delete(1); !ok || v != "a" {
		t.Fatalf("Delete(1) = %q, %v", v, ok)
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("deleted key still present")
	}
	if _, ok := m.Delete(1); ok {
		t.Fatal("double delete reported a value")
	}
}

func TestShardCountsSumToLen(t *testing.T) {
	m := NewMap[string, int](16, StringHash)
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for i, k := range keys {
		m.Store(k, i)
	}
	sum := 0
	nonEmpty := 0
	for _, c := range m.ShardCounts() {
		sum += c
		if c > 0 {
			nonEmpty++
		}
	}
	if sum != len(keys) || sum != m.Len() {
		t.Fatalf("shard counts sum %d, Len %d, want %d", sum, m.Len(), len(keys))
	}
	if nonEmpty < 2 {
		t.Fatalf("all %d keys hashed into %d shard(s); hash is not spreading", len(keys), nonEmpty)
	}
}

func TestUpdateInsertIfAbsent(t *testing.T) {
	m := NewMap[int64, int](4, Int64Hash)
	ins := func(v int) func(int, bool) (int, bool) {
		return func(old int, ok bool) (int, bool) {
			if ok {
				return old, true // duplicate: keep existing
			}
			return v, true
		}
	}
	if v, _ := m.Update(7, ins(1)); v != 1 {
		t.Fatalf("first insert = %d, want 1", v)
	}
	if v, _ := m.Update(7, ins(2)); v != 1 {
		t.Fatalf("duplicate insert overwrote: got %d, want 1", v)
	}
	// keep=false deletes.
	m.Update(7, func(int, bool) (int, bool) { return 0, false })
	if _, ok := m.Get(7); ok {
		t.Fatal("Update with keep=false did not delete")
	}
}

func TestRangeSnapshotAllowsReentrancy(t *testing.T) {
	m := NewMap[int64, int](4, Int64Hash)
	for i := int64(0); i < 32; i++ {
		m.Store(i, int(i))
	}
	seen := 0
	m.Range(func(k int64, _ int) bool {
		seen++
		m.Get(k) // reentrant read must not deadlock
		return true
	})
	if seen != 32 {
		t.Fatalf("Range visited %d entries, want 32", seen)
	}
}

func TestPowerOfTwoRounding(t *testing.T) {
	m := NewMap[int64, int](5, Int64Hash)
	if len(m.shards) != 8 {
		t.Fatalf("5 shards rounded to %d, want 8", len(m.shards))
	}
	if d := DefaultShards(); d&(d-1) != 0 || d < 8 {
		t.Fatalf("DefaultShards() = %d, want a power of two >= 8", d)
	}
}

// TestConcurrentMixedOps gives the race detector shared state to chew
// on: concurrent stores, deletes, updates and ranges over a small key
// space so shard locks genuinely contend.
func TestConcurrentMixedOps(t *testing.T) {
	m := NewMap[int64, int](8, Int64Hash)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := int64((g*500 + i) % 64)
				switch i % 4 {
				case 0:
					m.Store(k, i)
				case 1:
					m.Get(k)
				case 2:
					m.Update(k, func(old int, ok bool) (int, bool) { return old + 1, true })
				case 3:
					m.Delete(k)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			n := 0
			m.Range(func(int64, int) bool { n++; return true })
			m.ShardCounts()
		}
	}()
	wg.Wait()
	<-done
}
