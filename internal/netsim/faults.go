// Fault injection for the simulated fabric. The paper's lease model
// (§3.2) exists because phones on WLAN/Bluetooth links disappear
// mid-interaction; this file makes those failures scriptable so the
// remote and core layers can be tested against them: hard disconnects,
// stalls (partitions) of a bounded duration, byte corruption, and
// asymmetric loss, plus dial blackouts that model an access point out
// of range.
package netsim

import (
	"fmt"
	"sort"
	"time"
)

// Drop hard-disconnects the connection: both directions fail
// immediately on both endpoints (reads return EOF, writes fail), as if
// the radio link was cut. Unlike Close, Drop models a crash fault: no
// orderly shutdown is exchanged, frames in flight are lost, and both
// endpoints discover the failure through their next I/O.
func (c *Conn) Drop() {
	countFault(FaultDrop.String())
	c.write.drop()
	c.read.drop()
}

// Partition stalls both directions for d, measured from now: frames
// already in flight and frames written during the stall are delivered
// only after it lifts. It models a temporary radio shadow or handover;
// unlike Drop the connection recovers by itself.
func (c *Conn) Partition(d time.Duration) {
	countFault(FaultStall.String())
	until := c.write.clk.Now().Add(d)
	c.write.stall(until)
	c.read.stall(until)
}

// SetCorruption sets the per-write probability that a random bit of the
// payload is flipped in transit (both directions). Corruption reaches
// the receiver — unlike loss — so it exercises decoder hardening rather
// than timeouts.
func (c *Conn) SetCorruption(p float64) {
	countFault(FaultCorrupt.String())
	c.write.setCorrupt(p)
	c.read.setCorrupt(p)
}

// SetLoss overrides the link's LossProb per direction: out applies to
// writes from this endpoint, in applies to traffic towards it. Pass a
// negative value to leave a direction on the link profile's LossProb.
// This is the knob for deliberately asymmetric loss experiments; plain
// LossProb is symmetric (see LinkProfile.LossProb).
func (c *Conn) SetLoss(in, out float64) {
	countFault(FaultLoss.String())
	c.write.setLoss(out)
	c.read.setLoss(in)
}

// Dropped reports whether the connection was hard-disconnected (or
// closed).
func (c *Conn) Dropped() bool {
	select {
	case <-c.write.done:
		return true
	default:
		return false
	}
}

// FaultKind enumerates scripted fault types.
type FaultKind int

const (
	// FaultDrop hard-disconnects the link (see Conn.Drop).
	FaultDrop FaultKind = iota
	// FaultStall partitions the link for Fault.For (see Conn.Partition).
	FaultStall
	// FaultCorrupt sets the corruption probability to Fault.Prob.
	FaultCorrupt
	// FaultLoss sets asymmetric loss: Fault.In inbound, Fault.Out
	// outbound (see Conn.SetLoss).
	FaultLoss
)

func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultStall:
		return "stall"
	case FaultCorrupt:
		return "corrupt"
	case FaultLoss:
		return "loss"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault is one scripted fault event, At after schedule start.
type Fault struct {
	At   time.Duration
	Kind FaultKind
	// For is the stall duration (FaultStall).
	For time.Duration
	// Prob is the corruption probability (FaultCorrupt).
	Prob float64
	// In and Out are the per-direction loss probabilities (FaultLoss);
	// negative leaves that direction on the link profile.
	In, Out float64
}

// Schedule is a scripted fault sequence for one connection.
type Schedule []Fault

// Run applies the schedule to conn in a background goroutine, events in
// At order relative to the call time. The returned stop function
// cancels events that have not fired yet (it never un-does applied
// faults) and waits for the runner to exit.
func (s Schedule) Run(conn *Conn) (stop func()) {
	events := make(Schedule, len(s))
	copy(events, s)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })

	quit := make(chan struct{})
	done := make(chan struct{})
	clk := conn.write.clk
	start := clk.Now()
	go func() {
		defer close(done)
		for _, f := range events {
			wait := clk.Until(start.Add(f.At))
			if wait > 0 {
				t := clk.NewTimer(wait)
				select {
				case <-t.C:
				case <-quit:
					t.Stop()
					return
				}
			}
			switch f.Kind {
			case FaultDrop:
				conn.Drop()
			case FaultStall:
				conn.Partition(f.For)
			case FaultCorrupt:
				conn.SetCorruption(f.Prob)
			case FaultLoss:
				conn.SetLoss(f.In, f.Out)
			}
		}
	}()
	var stopped bool
	return func() {
		if !stopped {
			stopped = true
			close(quit)
		}
		<-done
	}
}

// Block refuses dials to addr for the given duration, modeling a target
// out of radio range: the listener still exists, but connection
// attempts fail with ErrConnRefused until the blackout lifts. Calling
// Block again replaces the previous blackout for that address.
func (f *Fabric) Block(addr string, d time.Duration) {
	countFault("block")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.blocked == nil {
		f.blocked = make(map[string]time.Time)
	}
	f.blocked[addr] = f.clk.Now().Add(d)
}

// Unblock lifts a blackout early.
func (f *Fabric) Unblock(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.blocked, addr)
}

// blockedNow reports whether addr is inside a dial blackout. Caller
// holds f.mu.
func (f *Fabric) blockedNow(addr string) bool {
	until, ok := f.blocked[addr]
	if !ok {
		return false
	}
	if f.clk.Now().After(until) {
		delete(f.blocked, addr)
		return false
	}
	return true
}
