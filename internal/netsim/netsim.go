// Package netsim provides simulated network links with configurable
// latency, jitter, bandwidth and loss, plus an in-process fabric of
// net.Conn/net.Listener pairs shaped by those links.
//
// It stands in for the paper's testbeds (DESIGN.md §2): 802.11b WLAN and
// Bluetooth 2.0 between phones and a desktop, 100 Mb/s Ethernet between
// desktops, and switched Gigabit in the cluster experiment. Profile
// constants are calibrated so that the latency relations the paper
// reports (Tables 1–2, Figures 3–6) emerge from the link model rather
// than being hard-coded; see profiles.go for the calibration notes.
package netsim

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/alfredo-mw/alfredo/internal/sim/clock"
)

// Fabric errors.
var (
	ErrAddrInUse    = errors.New("netsim: address already bound")
	ErrConnRefused  = errors.New("netsim: connection refused")
	ErrClosed       = errors.New("netsim: closed")
	ErrLinkDropped  = errors.New("netsim: link dropped the connection")
	errDeadline     = errors.New("netsim: i/o timeout")
	errWriteOnClose = errors.New("netsim: write on closed connection")
)

// LinkProfile describes the characteristics of a (symmetric) link.
type LinkProfile struct {
	// Name identifies the profile in diagnostics and reports.
	Name string
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Jitter is added uniformly in [0, Jitter) per transfer.
	Jitter time.Duration
	// Bandwidth is the link throughput in bytes/second (0 = unlimited).
	// Writers are paced: a write of n bytes occupies the link for
	// n/Bandwidth before it propagates.
	Bandwidth int64
	// LossProb is the probability that a write is silently lost. It is
	// zero for the paper's reliable transports and is used by failure
	// injection tests.
	//
	// Loss is applied on the sending side of each direction's pipe, so
	// a nonzero LossProb affects BOTH directions symmetrically: the
	// dialer's writes and the listener's writes each pass through their
	// own lossy pipe shaped by this profile. For deliberately
	// asymmetric loss, use Conn.SetLoss, which overrides the
	// probability per direction.
	LossProb float64
}

// RTT returns the theoretical round-trip time for a tiny payload: two
// propagation delays plus the mean jitter in both directions.
func (p LinkProfile) RTT() time.Duration {
	return 2*p.Latency + p.Jitter
}

// TransferTime returns the theoretical one-way delivery time for a
// payload of n bytes.
func (p LinkProfile) TransferTime(n int) time.Duration {
	d := p.Latency + p.Jitter/2
	if p.Bandwidth > 0 {
		d += time.Duration(float64(n) / float64(p.Bandwidth) * float64(time.Second))
	}
	return d
}

type simAddr string

func (a simAddr) Network() string { return "sim" }
func (a simAddr) String() string  { return string(a) }

// Fabric is an in-process network: named listeners, dialable with a
// per-connection link profile. The zero value is not usable; create
// with NewFabric.
type Fabric struct {
	clk       clock.Clock
	base      int64 // per-run RNG seed offset (see WithSeed)
	pipeDepth int   // per-pipe in-flight chunk budget (see WithPipeDepth)
	stats     Stats

	mu        sync.Mutex
	listeners map[string]*Listener
	blocked   map[string]time.Time
	seed      int64
}

// defaultPipeDepth is the per-direction in-flight chunk budget of a
// connection. Each slot is a chunk struct (~48 bytes), so at the
// default a connection costs ~100 KB of channel buffer — irrelevant
// for tens of connections, prohibitive for tens of thousands.
const defaultPipeDepth = 1024

// NewFabric creates an empty fabric on the wall clock.
func NewFabric() *Fabric {
	return &Fabric{clk: clock.Wall, listeners: make(map[string]*Listener)}
}

// WithClock rebinds the fabric to c: all pacing, latency, jitter and
// fault timing runs on that clock. Under a virtual clock the fabric
// never sleeps wall time, and the sub-millisecond sleep floor (see
// sleepFloor) does not apply — virtual delays are exact and free. Call
// before the first Listen/Dial; returns the fabric for chaining.
func (f *Fabric) WithClock(c clock.Clock) *Fabric {
	f.clk = clock.Or(c)
	return f
}

// WithSeed offsets every per-connection RNG seed by s, so one
// simulation seed selects a distinct (but reproducible) loss, jitter
// and corruption stream for the whole fabric. Call before the first
// Dial; returns the fabric for chaining.
func (f *Fabric) WithSeed(s int64) *Fabric {
	f.base = s
	return f
}

// WithPipeDepth bounds the in-flight chunks buffered per pipe
// direction (values < 1 select the 1024-chunk default). Scale
// simulations with tens of thousands of connections shrink it: a
// writer whose pipe is full blocks, which is transport backpressure,
// not an error. Call before the first Dial; returns the fabric for
// chaining.
func (f *Fabric) WithPipeDepth(depth int) *Fabric {
	f.pipeDepth = depth
	return f
}

// Clock returns the clock the fabric runs on.
func (f *Fabric) Clock() clock.Clock { return f.clk }

// Stats are the fabric-wide chunk counters, readable at any time and
// used by the simulation harness as a conservation invariant: every
// chunk written is eventually delivered, lost to injected loss, or
// discarded in flight by a crash-drop.
type Stats struct {
	Written   atomic.Int64 // chunks accepted by a pipe write
	Bytes     atomic.Int64 // payload bytes accepted
	Delivered atomic.Int64 // chunks handed to a reader
	Lost      atomic.Int64 // chunks discarded by loss injection
	Dropped   atomic.Int64 // in-flight chunks discarded by a crash-drop
}

// Stats exposes the fabric's counters.
func (f *Fabric) Stats() *Stats { return &f.stats }

// Listen binds a listener to addr.
func (f *Fabric) Listen(addr string) (*Listener, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, busy := f.listeners[addr]; busy {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	l := &Listener{
		fabric:  f,
		addr:    simAddr(addr),
		backlog: make(chan net.Conn, 16),
		done:    make(chan struct{}),
	}
	f.listeners[addr] = l
	return l, nil
}

// Dial connects to the listener bound at addr through a link with the
// given profile. Both directions of the resulting connection are shaped.
func (f *Fabric) Dial(addr string, link LinkProfile) (net.Conn, error) {
	f.mu.Lock()
	l := f.listeners[addr]
	blocked := f.blockedNow(addr)
	f.seed++
	seq := f.seed
	f.mu.Unlock()
	mDials.Inc()
	if l == nil || blocked {
		mDialsRefused.Inc()
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}

	// Pipe RNGs are seeded from the link profile's name plus the dial
	// sequence number plus the fabric's run seed (WithSeed), so a test
	// that dials the same links in the same order observes the same
	// loss/jitter pattern on every run of the same seed.
	seed := int64(linkSeed(link.Name)) + seq + f.base
	dialerAddr := simAddr(fmt.Sprintf("dialer-%d", seq))
	depth := f.pipeDepth
	if depth < 1 {
		depth = defaultPipeDepth
	}
	c2s := newShapedPipe(link, seed*2, f.clk, &f.stats, depth)
	s2c := newShapedPipe(link, seed*2+1, f.clk, &f.stats, depth)
	clientConn := &Conn{
		link:   link,
		read:   s2c,
		write:  c2s,
		local:  dialerAddr,
		remote: l.addr,
	}
	serverConn := &Conn{
		link:   link,
		read:   c2s,
		write:  s2c,
		local:  l.addr,
		remote: dialerAddr,
	}

	select {
	case l.backlog <- serverConn:
		// Model connection establishment as one round trip.
		sleepOn(f.clk, link.RTT())
		return clientConn, nil
	case <-l.done:
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
}

// Listener implements net.Listener over the fabric.
type Listener struct {
	fabric  *Fabric
	addr    simAddr
	backlog chan net.Conn
	done    chan struct{}
	once    sync.Once
}

var _ net.Listener = (*Listener)(nil)

// Accept waits for an inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// Close unbinds the listener.
func (l *Listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.fabric.mu.Lock()
		delete(l.fabric.listeners, string(l.addr))
		l.fabric.mu.Unlock()
	})
	return nil
}

// Addr returns the bound address.
func (l *Listener) Addr() net.Addr { return l.addr }

// chunk is one in-flight transfer on a shaped pipe.
type chunk struct {
	data      []byte
	deliverAt time.Time
}

// shapedPipe is one direction of a simulated link: writes are paced by
// bandwidth, delivery is delayed by latency+jitter, FIFO order is
// preserved.
type shapedPipe struct {
	link  LinkProfile
	clk   clock.Clock
	stats *Stats

	mu       sync.Mutex
	rng      *rand.Rand
	lastIn   time.Time // when the link becomes free for the next write
	lastOut  time.Time // monotone delivery horizon (FIFO clamp)
	closed   bool
	leftover []byte

	// Fault injection state (see faults.go).
	stallUntil time.Time // delivery suspended until then
	corrupt    float64   // per-write bit-flip probability
	lossProb   float64   // per-direction loss override
	lossSet    bool      // lossProb overrides link.LossProb when true
	dropped    bool      // crash fault: in-flight chunks are discarded

	obs pipeObs

	ch   chan chunk
	done chan struct{}
}

func newShapedPipe(link LinkProfile, seed int64, clk clock.Clock, stats *Stats, depth int) *shapedPipe {
	return &shapedPipe{
		link:  link,
		clk:   clock.Or(clk),
		stats: stats,
		rng:   rand.New(rand.NewSource(seed)),
		obs:   newPipeObs(link.Name),
		ch:    make(chan chunk, depth),
		done:  make(chan struct{}),
	}
}

// sleep pauses for d on the pipe's clock.
func (p *shapedPipe) sleep(d time.Duration) { sleepOn(p.clk, d) }

func (p *shapedPipe) write(b []byte) (int, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return 0, errWriteOnClose
	}
	// Loss injection drops the payload after pacing, as a real lossy
	// link would. A per-direction override (Conn.SetLoss) wins over the
	// symmetric profile probability.
	lossProb := p.link.LossProb
	if p.lossSet {
		lossProb = p.lossProb
	}
	lost := lossProb > 0 && p.rng.Float64() < lossProb
	flip := p.corrupt > 0 && p.rng.Float64() < p.corrupt
	flipBit := 0
	if flip && len(b) > 0 {
		flipBit = p.rng.Intn(len(b) * 8)
	}
	jitter := time.Duration(0)
	if p.link.Jitter > 0 {
		jitter = time.Duration(p.rng.Int63n(int64(p.link.Jitter)))
	}

	now := p.clk.Now()
	start := p.lastIn
	if start.Before(now) {
		start = now
	}
	serialization := time.Duration(0)
	if p.link.Bandwidth > 0 {
		serialization = time.Duration(float64(len(b)) / float64(p.link.Bandwidth) * float64(time.Second))
	}
	sendDone := start.Add(serialization)
	p.lastIn = sendDone
	deliverAt := sendDone.Add(p.link.Latency + jitter)
	if deliverAt.Before(p.lastOut) {
		deliverAt = p.lastOut // preserve FIFO delivery
	}
	// A partition holds delivery until it lifts.
	if deliverAt.Before(p.stallUntil) {
		deliverAt = p.stallUntil
	}
	p.lastOut = deliverAt
	p.mu.Unlock()

	// Pace the writer (models transmit-side backpressure).
	p.sleep(p.clk.Until(sendDone))

	p.obs.chunks.Inc()
	p.obs.bytes.Add(int64(len(b)))
	if lost {
		p.obs.lost.Inc()
		p.stats.Written.Add(1)
		p.stats.Bytes.Add(int64(len(b)))
		p.stats.Lost.Add(1)
		return len(b), nil
	}
	data := make([]byte, len(b))
	copy(data, b)
	if flip && len(data) > 0 {
		data[flipBit/8] ^= 1 << (flipBit % 8)
	}
	select {
	case p.ch <- chunk{data: data, deliverAt: deliverAt}:
		// Count only chunks that actually entered the pipe, so that
		// after quiescence Written == Delivered + Lost + Dropped.
		p.stats.Written.Add(1)
		p.stats.Bytes.Add(int64(len(b)))
		return len(b), nil
	case <-p.done:
		return 0, errWriteOnClose
	}
}

func (p *shapedPipe) read(b []byte, deadline time.Time) (int, error) {
	p.mu.Lock()
	if len(p.leftover) > 0 {
		n := copy(b, p.leftover)
		p.leftover = p.leftover[n:]
		p.mu.Unlock()
		return n, nil
	}
	p.mu.Unlock()

	var timeout <-chan time.Time
	if !deadline.IsZero() {
		t := p.clk.NewTimer(p.clk.Until(deadline))
		defer t.Stop()
		timeout = t.C
	}

	select {
	case c, ok := <-p.ch:
		if !ok {
			return 0, io.EOF
		}
		if !p.waitDeliver(c) {
			// Crash-dropped while in the air: the chunk never arrives.
			p.stats.Dropped.Add(1)
			return 0, io.EOF
		}
		p.stats.Delivered.Add(1)
		n := copy(b, c.data)
		if n < len(c.data) {
			p.mu.Lock()
			p.leftover = append(p.leftover, c.data[n:]...)
			p.mu.Unlock()
		}
		return n, nil
	case <-p.done:
		p.mu.Lock()
		crashed := p.dropped
		p.mu.Unlock()
		if crashed {
			// Crash fault (Conn.Drop): in-flight chunks are lost.
			return 0, io.EOF
		}
		// Orderly close: drain anything that raced with it.
		select {
		case c, ok := <-p.ch:
			if ok {
				p.sleep(p.clk.Until(p.deliverTime(c)))
				p.stats.Delivered.Add(1)
				n := copy(b, c.data)
				if n < len(c.data) {
					p.mu.Lock()
					p.leftover = append(p.leftover, c.data[n:]...)
					p.mu.Unlock()
				}
				return n, nil
			}
		default:
		}
		return 0, io.EOF
	case <-timeout:
		return 0, errDeadline
	}
}

func (p *shapedPipe) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.done)
}

// waitDeliver sleeps until the chunk's delivery time, re-checking after
// each wait because a partition may extend it. It aborts — reporting
// false — when the pipe is crash-dropped mid-wait: a chunk still "in
// the air" when the radio link is cut never arrives.
func (p *shapedPipe) waitDeliver(c chunk) bool {
	for {
		d := p.clk.Until(p.deliverTime(c))
		if d <= 0 {
			return true
		}
		t := p.clk.NewTimer(d)
		select {
		case <-t.C:
		case <-p.done:
			t.Stop()
			p.mu.Lock()
			crashed := p.dropped
			p.mu.Unlock()
			if crashed {
				return false
			}
			// Orderly close: the chunk is still delivered on time.
			p.sleep(p.clk.Until(p.deliverTime(c)))
			return true
		}
	}
}

// drop closes the pipe as a crash fault: pending chunks are discarded
// instead of drained, so neither endpoint sees data written but not yet
// delivered (see Conn.Drop).
func (p *shapedPipe) drop() {
	p.mu.Lock()
	p.dropped = true
	p.mu.Unlock()
	p.close()
	// Discard chunks still queued: they were in the air when the link
	// was cut. Chunks a reader already holds are counted by its aborted
	// waitDeliver instead, so each chunk is accounted exactly once.
	for {
		select {
		case <-p.ch:
			p.stats.Dropped.Add(1)
		default:
			return
		}
	}
}

// Conn is a net.Conn shaped by a LinkProfile.
type Conn struct {
	link   LinkProfile
	read   *shapedPipe
	write  *shapedPipe
	local  simAddr
	remote simAddr

	mu           sync.Mutex
	readDeadline time.Time
	closed       bool
}

var _ net.Conn = (*Conn)(nil)

// Read implements net.Conn.
func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	deadline := c.readDeadline
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return 0, io.EOF
	}
	n, err := c.read.read(b, deadline)
	if errors.Is(err, errDeadline) {
		return n, &net.OpError{Op: "read", Net: "sim", Addr: c.remote, Err: err}
	}
	return n, err
}

// Write implements net.Conn.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return 0, errWriteOnClose
	}
	return c.write.write(b)
}

// Close tears down both directions.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.write.close()
	c.read.close()
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn (read side only; writes are paced,
// not deadlined).
func (c *Conn) SetDeadline(t time.Time) error {
	return c.SetReadDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.readDeadline = t
	return nil
}

// SetWriteDeadline implements net.Conn as a no-op.
func (c *Conn) SetWriteDeadline(t time.Time) error { return nil }

// Link returns the profile currently shaping this connection.
func (c *Conn) Link() LinkProfile {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.link
}

// SetLink changes the link characteristics at runtime (both
// directions). It models mobility: a phone walking away from an access
// point, radio interference, or a handover — and is what the online
// distribution optimizer reacts to.
func (c *Conn) SetLink(p LinkProfile) {
	c.mu.Lock()
	c.link = p
	c.mu.Unlock()
	c.read.setLink(p)
	c.write.setLink(p)
}

func (p *shapedPipe) setLink(link LinkProfile) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.link = link
}

// deliverTime returns the chunk's delivery time, pushed back by any
// active partition (chunks queued before the stall wait it out too).
func (p *shapedPipe) deliverTime(c chunk) time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c.deliverAt.Before(p.stallUntil) {
		return p.stallUntil
	}
	return c.deliverAt
}

func (p *shapedPipe) stall(until time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if until.After(p.stallUntil) {
		p.stallUntil = until
	}
}

func (p *shapedPipe) setCorrupt(prob float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.corrupt = prob
}

// setLoss overrides the profile loss probability for this direction; a
// negative value restores the profile's LossProb.
func (p *shapedPipe) setLoss(prob float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if prob < 0 {
		p.lossSet = false
		p.lossProb = 0
		return
	}
	p.lossSet = true
	p.lossProb = prob
}

// linkSeed hashes a link profile name to an RNG seed (FNV-1a), so the
// shaped-pipe randomness is a deterministic function of (link name,
// dial order).
func linkSeed(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}

// sleepFloor is the smallest delay worth sleeping for: time.Sleep
// overshoots sub-millisecond durations by up to ~1 ms, so sleeping for
// e.g. a 150 µs Ethernet propagation delay would inflate it several-
// fold. Delays below the floor are treated as zero; wired-LAN latencies
// therefore read as "negligible", which is also what the paper's
// measurements resolve them to.
const sleepFloor = 500 * time.Microsecond

// sleepOn pauses for d on c. On the wall clock the sub-precision floor
// applies; on a virtual clock every positive delay is honored exactly,
// since virtual sleeps cost no real time and skipping them would erase
// short latencies from the simulated schedule.
func sleepOn(c clock.Clock, d time.Duration) {
	if c == clock.Wall {
		if d >= sleepFloor {
			time.Sleep(d)
		}
		return
	}
	if d > 0 {
		c.Sleep(d)
	}
}
