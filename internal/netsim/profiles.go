package netsim

import "time"

// Stock link profiles, calibrated against the paper's measurements.
//
// Calibration notes (see EXPERIMENTS.md for the resulting numbers):
//
//   - WLAN11b models the Nokia 9300i on 802.11b with power saving: the
//     paper's phone-side invocation latency of ~100 ms (Fig. 5) and the
//     94–110 ms interface acquisition (Table 1, ~2 kB transfer) imply an
//     RTT around 70–80 ms and an effective throughput well below the
//     nominal 11 Mb/s.
//   - BT20 models the Sony Ericsson M600i on Bluetooth 2.0: comparable
//     small-message RTT (Fig. 6 ≈ Fig. 5) but much lower burst
//     throughput, which is what makes the 2 kB interface acquisition
//     ~2.5–3x slower than WLAN (Table 2 vs Table 1) while invocations
//     stay comparable — the paper's §4.3 observation that "the
//     bandwidth is not a dominating factor unless a larger amount of
//     data is shipped".
//   - Ethernet100 is the 100 Mb/s switched network of Fig. 3.
//   - Gigabit is the switched 1000 Mb/s cluster network of Fig. 4.
var (
	// Loopback approximates the in-machine transport used in unit tests.
	Loopback = LinkProfile{
		Name:      "loopback",
		Latency:   20 * time.Microsecond,
		Bandwidth: 0,
	}

	// Ethernet100 is a 100 Mb/s switched Ethernet segment.
	Ethernet100 = LinkProfile{
		Name:      "eth100",
		Latency:   150 * time.Microsecond,
		Jitter:    60 * time.Microsecond,
		Bandwidth: 12_500_000,
	}

	// Gigabit is a switched 1000 Mb/s Ethernet segment.
	Gigabit = LinkProfile{
		Name:      "gigabit",
		Latency:   60 * time.Microsecond,
		Jitter:    30 * time.Microsecond,
		Bandwidth: 125_000_000,
	}

	// WLAN11b is 802.11b as seen by a 2008 phone in power-save mode.
	WLAN11b = LinkProfile{
		Name:      "wlan11b",
		Latency:   35 * time.Millisecond,
		Jitter:    8 * time.Millisecond,
		Bandwidth: 150_000,
	}

	// BT20 is Bluetooth 2.0 (SPP-style) as seen by a 2008 phone.
	BT20 = LinkProfile{
		Name:      "bt20",
		Latency:   40 * time.Millisecond,
		Jitter:    10 * time.Millisecond,
		Bandwidth: 18_000,
	}
)

// ProfileByName returns a stock profile by its Name field.
func ProfileByName(name string) (LinkProfile, bool) {
	for _, p := range []LinkProfile{Loopback, Ethernet100, Gigabit, WLAN11b, BT20} {
		if p.Name == name {
			return p, true
		}
	}
	return LinkProfile{}, false
}
