package netsim

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func pipePair(t *testing.T, link LinkProfile) (client, server net.Conn) {
	t.Helper()
	f := NewFabric()
	l, err := f.Listen("host")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = l.Close() })

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		server = c
	}()
	client, err = f.Dial("host", link)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	wg.Wait()
	t.Cleanup(func() {
		_ = client.Close()
		if server != nil {
			_ = server.Close()
		}
	})
	return client, server
}

func TestFabricEcho(t *testing.T) {
	client, server := pipePair(t, Loopback)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64)
		n, err := server.Read(buf)
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if _, err := server.Write(buf[:n]); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()

	msg := []byte("hello over the fabric")
	if _, err := client.Write(msg); err != nil {
		t.Fatalf("client write: %v", err)
	}
	reply := make([]byte, 64)
	n, err := client.Read(reply)
	if err != nil {
		t.Fatalf("client read: %v", err)
	}
	if !bytes.Equal(reply[:n], msg) {
		t.Errorf("echo mismatch: %q", reply[:n])
	}
	wg.Wait()
}

func TestLatencyShaping(t *testing.T) {
	link := LinkProfile{Name: "slow", Latency: 30 * time.Millisecond}
	client, server := pipePair(t, link)

	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 8)
		if _, err := server.Read(buf); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if _, err := server.Write(buf); err != nil {
			t.Errorf("write: %v", err)
		}
	}()

	start := time.Now()
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := client.Read(buf); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	<-done
	if rtt < 55*time.Millisecond {
		t.Errorf("RTT %v below configured 2x30ms latency", rtt)
	}
	if rtt > 200*time.Millisecond {
		t.Errorf("RTT %v implausibly high", rtt)
	}
}

func TestBandwidthShaping(t *testing.T) {
	// 100 KB at 1 MB/s should take >= 100 ms.
	link := LinkProfile{Name: "thin", Bandwidth: 1_000_000}
	client, server := pipePair(t, link)

	const size = 100_000
	received := make(chan time.Time, 1)
	go func() {
		buf := make([]byte, 4096)
		total := 0
		for total < size {
			n, err := server.Read(buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			total += n
		}
		received <- time.Now()
	}()

	start := time.Now()
	payload := make([]byte, size)
	if _, err := client.Write(payload); err != nil {
		t.Fatal(err)
	}
	end := <-received
	if d := end.Sub(start); d < 90*time.Millisecond {
		t.Errorf("transfer of %d bytes took %v, want >= ~100ms at 1MB/s", size, d)
	}
}

func TestFIFOOrder(t *testing.T) {
	link := LinkProfile{Name: "jittery", Latency: time.Millisecond, Jitter: 5 * time.Millisecond}
	client, server := pipePair(t, link)

	const n = 50
	go func() {
		for i := 0; i < n; i++ {
			if _, err := client.Write([]byte{byte(i)}); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()
	buf := make([]byte, 1)
	var got []byte
	for len(got) < n {
		k, err := server.Read(buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got = append(got, buf[:k]...)
	}
	for i := 0; i < n; i++ {
		if got[i] != byte(i) {
			t.Fatalf("out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestReadDeadline(t *testing.T) {
	client, _ := pipePair(t, Loopback)
	if err := client.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	_, err := client.Read(buf)
	var nerr net.Error
	if !errors.As(err, &nerr) {
		t.Fatalf("deadline read error = %v, want net.Error", err)
	}
}

func TestCloseSemantics(t *testing.T) {
	client, server := pipePair(t, Loopback)
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write([]byte("x")); err == nil {
		t.Error("write on closed conn should fail")
	}
	buf := make([]byte, 1)
	if _, err := server.Read(buf); !errors.Is(err, io.EOF) {
		t.Errorf("peer read after close = %v, want EOF", err)
	}
	_ = client.Close() // idempotent
}

func TestDialUnknownAddress(t *testing.T) {
	f := NewFabric()
	if _, err := f.Dial("nowhere", Loopback); !errors.Is(err, ErrConnRefused) {
		t.Errorf("Dial = %v, want ErrConnRefused", err)
	}
}

func TestListenTwice(t *testing.T) {
	f := NewFabric()
	l, err := f.Listen("dup")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := f.Listen("dup"); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("second Listen = %v, want ErrAddrInUse", err)
	}
	// Address is reusable after close.
	_ = l.Close()
	l2, err := f.Listen("dup")
	if err != nil {
		t.Errorf("Listen after Close: %v", err)
	} else {
		_ = l2.Close()
	}
}

func TestListenerClose(t *testing.T) {
	f := NewFabric()
	l, _ := f.Listen("h")
	errCh := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond)
	_ = l.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Accept after Close = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not return after Close")
	}
}

func TestLossInjection(t *testing.T) {
	link := LinkProfile{Name: "lossy", LossProb: 1.0}
	client, server := pipePair(t, link)
	if _, err := client.Write([]byte("doomed")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := server.SetReadDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := server.Read(buf); err == nil {
		t.Error("lossy link delivered the payload")
	}
}

func TestPartialReadKeepsLeftover(t *testing.T) {
	client, server := pipePair(t, Loopback)
	if _, err := client.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 2)
	n, err := server.Read(small)
	if err != nil || n != 2 || string(small) != "ab" {
		t.Fatalf("first read = %q, %v", small[:n], err)
	}
	rest := make([]byte, 8)
	n, err = server.Read(rest)
	if err != nil || string(rest[:n]) != "cdef" {
		t.Fatalf("second read = %q, %v", rest[:n], err)
	}
}

func TestProfiles(t *testing.T) {
	for _, name := range []string{"loopback", "eth100", "gigabit", "wlan11b", "bt20"} {
		p, ok := ProfileByName(name)
		if !ok {
			t.Errorf("profile %s missing", name)
			continue
		}
		if p.Name != name {
			t.Errorf("profile name mismatch: %s vs %s", p.Name, name)
		}
	}
	if _, ok := ProfileByName("carrier-pigeon"); ok {
		t.Error("unknown profile should not resolve")
	}
	// Calibration sanity: phone links are orders of magnitude slower
	// than wired links, and BT moves bulk data slower than WLAN.
	if WLAN11b.RTT() <= Ethernet100.RTT() {
		t.Error("WLAN RTT should exceed Ethernet RTT")
	}
	if BT20.TransferTime(2048) <= WLAN11b.TransferTime(2048) {
		t.Error("2KB over BT should be slower than over WLAN")
	}
	// Small messages are latency-bound: WLAN and BT within 2x.
	w, b := WLAN11b.TransferTime(40), BT20.TransferTime(40)
	if b > 2*w {
		t.Errorf("small transfers should be comparable: wlan %v vs bt %v", w, b)
	}
}

func TestConcurrentConnections(t *testing.T) {
	f := NewFabric()
	l, err := f.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				defer c.Close()
				buf := make([]byte, 16)
				n, err := c.Read(buf)
				if err != nil {
					return
				}
				_, _ = c.Write(buf[:n])
			}(c)
		}
	}()

	const clients = 10
	var cwg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			c, err := f.Dial("srv", Loopback)
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			defer c.Close()
			msg := []byte{byte(i)}
			if _, err := c.Write(msg); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			buf := make([]byte, 1)
			if _, err := c.Read(buf); err != nil || buf[0] != byte(i) {
				t.Errorf("echo %d = %v, %v", i, buf[0], err)
			}
		}(i)
	}
	cwg.Wait()
	_ = l.Close()
	wg.Wait()
}

func TestLinkProfileMath(t *testing.T) {
	p := LinkProfile{Latency: 10 * time.Millisecond, Jitter: 2 * time.Millisecond, Bandwidth: 1000}
	if rtt := p.RTT(); rtt != 22*time.Millisecond {
		t.Errorf("RTT = %v", rtt)
	}
	// 500 bytes at 1000 B/s = 500ms serialization + latency + jitter/2.
	if tt := p.TransferTime(500); tt != 511*time.Millisecond {
		t.Errorf("TransferTime = %v", tt)
	}
	unbounded := LinkProfile{Latency: time.Millisecond}
	if tt := unbounded.TransferTime(1 << 30); tt != time.Millisecond {
		t.Errorf("unlimited bandwidth TransferTime = %v", tt)
	}
}

func TestSetLinkChangesShaping(t *testing.T) {
	client, server := pipePair(t, Loopback)
	simClient := client.(*Conn)
	if simClient.Link().Name != "loopback" {
		t.Errorf("initial link = %s", simClient.Link().Name)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 8)
		for i := 0; i < 2; i++ {
			if _, err := server.Read(buf); err != nil {
				return
			}
			if _, err := server.Write(buf[:4]); err != nil {
				return
			}
		}
	}()

	// Fast round trip first.
	start := time.Now()
	_, _ = client.Write([]byte("ping"))
	buf := make([]byte, 8)
	_, _ = client.Read(buf)
	fast := time.Since(start)

	// Degrade and measure again.
	simClient.SetLink(LinkProfile{Name: "slow", Latency: 25 * time.Millisecond})
	if simClient.Link().Name != "slow" {
		t.Error("SetLink not reflected")
	}
	start = time.Now()
	_, _ = client.Write([]byte("ping"))
	_, _ = client.Read(buf)
	slow := time.Since(start)
	<-done

	if slow < 45*time.Millisecond {
		t.Errorf("degraded RTT = %v, want >= ~50ms", slow)
	}
	if slow < fast {
		t.Errorf("degraded (%v) not slower than fast (%v)", slow, fast)
	}
}
