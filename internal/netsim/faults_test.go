package netsim

import (
	"bytes"
	"errors"
	"math/bits"
	"net"
	"testing"
	"time"
)

// receivedSet reads single-byte messages until the deadline passes and
// returns which values arrived.
func receivedSet(t *testing.T, c net.Conn, deadline time.Time) map[byte]bool {
	t.Helper()
	got := make(map[byte]bool)
	buf := make([]byte, 64)
	for {
		_ = c.SetReadDeadline(deadline)
		n, err := c.Read(buf)
		for i := 0; i < n; i++ {
			got[buf[i]] = true
		}
		if err != nil {
			return got
		}
	}
}

func TestDeterministicLossPattern(t *testing.T) {
	// Two fresh fabrics dialing the same link in the same order must
	// observe the same loss pattern: pipe RNGs are seeded from the link
	// name plus the dial sequence number.
	link := LinkProfile{Name: "chaos-lossy", LossProb: 0.5}
	const n = 40
	run := func() map[byte]bool {
		client, server := pipePair(t, link)
		for i := 0; i < n; i++ {
			if _, err := client.Write([]byte{byte(i)}); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		return receivedSet(t, server, time.Now().Add(100*time.Millisecond))
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == n {
		t.Fatalf("loss 0.5 delivered %d/%d messages; pattern not informative", len(a), n)
	}
	for i := 0; i < n; i++ {
		if a[byte(i)] != b[byte(i)] {
			t.Fatalf("loss pattern diverged at message %d: run1=%v run2=%v", i, a[byte(i)], b[byte(i)])
		}
	}
}

func TestPartitionDelaysDelivery(t *testing.T) {
	client, server := pipePair(t, Loopback)
	const stall = 80 * time.Millisecond
	client.(*Conn).Partition(stall)

	start := time.Now()
	if _, err := client.Write([]byte("held")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 8)
	n, err := server.Read(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if d := time.Since(start); d < stall-10*time.Millisecond {
		t.Errorf("partitioned delivery took %v, want >= ~%v", d, stall)
	}
	if string(buf[:n]) != "held" {
		t.Errorf("payload = %q after stall", buf[:n])
	}
}

func TestDropKillsBothEndpoints(t *testing.T) {
	client, server := pipePair(t, Loopback)
	sim := client.(*Conn)
	if sim.Dropped() {
		t.Fatal("fresh connection reports dropped")
	}
	sim.Drop()
	if !sim.Dropped() {
		t.Error("Dropped() false after Drop")
	}
	if _, err := client.Write([]byte("x")); err == nil {
		t.Error("write on dropped conn succeeded")
	}
	buf := make([]byte, 4)
	if _, err := server.Read(buf); err == nil {
		t.Error("peer read on dropped conn succeeded")
	}
	if _, err := server.Write([]byte("y")); err == nil {
		t.Error("peer write on dropped conn succeeded")
	}
}

func TestCorruptionFlipsOneBit(t *testing.T) {
	client, server := pipePair(t, Loopback)
	client.(*Conn).SetCorruption(1.0)

	payload := bytes.Repeat([]byte{0xAA}, 32)
	if _, err := client.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(payload))
	total := 0
	for total < len(payload) {
		n, err := server.Read(got[total:])
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		total += n
	}
	flipped := 0
	for i := range payload {
		flipped += bits.OnesCount8(payload[i] ^ got[i])
	}
	if flipped != 1 {
		t.Errorf("corruption flipped %d bits, want exactly 1 per write", flipped)
	}
}

func TestSetLossAsymmetric(t *testing.T) {
	client, server := pipePair(t, Loopback)
	// Outbound loss 100%, inbound untouched: client->server traffic
	// vanishes while server->client still flows.
	client.(*Conn).SetLoss(-1, 1.0)

	if _, err := client.Write([]byte("gone")); err != nil {
		t.Fatalf("write: %v", err)
	}
	_ = server.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 8)
	if _, err := server.Read(buf); err == nil {
		t.Error("outbound-lossy direction delivered the payload")
	}

	if _, err := server.Write([]byte("back")); err != nil {
		t.Fatalf("server write: %v", err)
	}
	_ = client.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	n, err := client.Read(buf)
	if err != nil || string(buf[:n]) != "back" {
		t.Errorf("inbound direction broken: %q, %v", buf[:n], err)
	}

	// Negative values restore the profile default (loopback: no loss).
	client.(*Conn).SetLoss(-1, -1)
	if _, err := client.Write([]byte("ok")); err != nil {
		t.Fatalf("write: %v", err)
	}
	_ = server.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if _, err := server.Read(buf); err != nil {
		t.Errorf("restored direction still lossy: %v", err)
	}
}

func TestScheduleRun(t *testing.T) {
	client, server := pipePair(t, Loopback)
	sim := client.(*Conn)
	stop := Schedule{
		{At: 0, Kind: FaultStall, For: 500 * time.Millisecond},
		{At: 30 * time.Millisecond, Kind: FaultDrop},
	}.Run(sim)
	defer stop()
	// Give the At=0 stall a moment to land before writing into it.
	time.Sleep(10 * time.Millisecond)

	// The stall holds the payload; the drop then kills the link before
	// delivery, so the server sees the failure, not the data.
	if _, err := client.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	deadlineRead := func() error {
		_ = server.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		_, err := server.Read(make([]byte, 4))
		return err
	}
	if err := deadlineRead(); err == nil {
		t.Error("scheduled drop did not prevent delivery")
	}
	if !sim.Dropped() {
		t.Error("connection not dropped after schedule ran")
	}
}

func TestScheduleStopCancelsPending(t *testing.T) {
	client, _ := pipePair(t, Loopback)
	sim := client.(*Conn)
	stop := Schedule{{At: time.Hour, Kind: FaultDrop}}.Run(sim)
	stop()
	stop() // idempotent
	if sim.Dropped() {
		t.Error("cancelled schedule still dropped the connection")
	}
}

func TestFabricBlock(t *testing.T) {
	f := NewFabric()
	l, err := f.Listen("target")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			_ = c.Close()
		}
	}()

	f.Block("target", time.Hour)
	if _, err := f.Dial("target", Loopback); !errors.Is(err, ErrConnRefused) {
		t.Errorf("Dial during blackout = %v, want ErrConnRefused", err)
	}
	f.Unblock("target")
	c, err := f.Dial("target", Loopback)
	if err != nil {
		t.Fatalf("Dial after Unblock: %v", err)
	}
	_ = c.Close()

	// A blackout expires on its own.
	f.Block("target", 10*time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	c, err = f.Dial("target", Loopback)
	if err != nil {
		t.Fatalf("Dial after blackout expiry: %v", err)
	}
	_ = c.Close()
}
