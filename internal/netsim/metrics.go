package netsim

import "github.com/alfredo-mw/alfredo/internal/obs"

// Per-link traffic and fault-injection telemetry, recorded on the
// process-wide default hub (the fabric has no config to plumb a hub
// through). Pipe handles are resolved once per dial; the per-write cost
// is atomic adds.
type pipeObs struct {
	bytes  *obs.Counter
	chunks *obs.Counter
	lost   *obs.Counter
}

func newPipeObs(link string) pipeObs {
	m := obs.Default().Metrics
	return pipeObs{
		bytes:  m.Counter("alfredo_netsim_bytes_total", "link", link),
		chunks: m.Counter("alfredo_netsim_chunks_total", "link", link),
		lost:   m.Counter("alfredo_netsim_lost_chunks_total", "link", link),
	}
}

// countFault records one injected fault by kind ("drop", "partition",
// "corruption", "loss", "block").
func countFault(kind string) {
	obs.Default().Metrics.Counter("alfredo_netsim_faults_total", "kind", kind).Inc()
}

var (
	mDials        = obs.Default().Metrics.Counter("alfredo_netsim_dials_total")
	mDialsRefused = obs.Default().Metrics.Counter("alfredo_netsim_dials_refused_total")
)
