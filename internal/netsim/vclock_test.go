package netsim

import (
	"fmt"
	"hash/crc32"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/sim/clock"
)

// lossyProfile exercises every shaping knob the virtual clock drives:
// latency, jitter (one rng draw per chunk), bandwidth pacing, and a
// loss probability high enough that most runs drop several chunks.
var lossyProfile = LinkProfile{
	Name:      "vclock-lossy",
	Latency:   10 * time.Millisecond,
	Jitter:    4 * time.Millisecond,
	Bandwidth: 100_000,
	LossProb:  0.2,
}

// deliveryLog runs one seeded fabric on a virtual clock: a writer
// pushes 40 variable-size chunks, a reader logs each delivery with its
// virtual timestamp and checksum, and the final stats counters are
// appended. The returned string is the run's full observable behavior.
func deliveryLog(t *testing.T, seed int64) string {
	t.Helper()
	v := clock.NewVirtual(seed)
	f := NewFabric().WithClock(v).WithSeed(seed)
	l, err := f.Listen("host")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	accepted := make(chan *Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c.(*Conn)
	}()

	var dialed *Conn
	var dialDone atomic.Bool
	go func() {
		c, err := f.Dial("host", lossyProfile)
		if err == nil {
			dialed = c.(*Conn)
		}
		dialDone.Store(true)
	}()
	if !v.WaitCond(time.Second, dialDone.Load) || dialed == nil {
		t.Fatal("dial did not complete under the virtual clock")
	}
	server := <-accepted

	// Writer: chunk sizes vary deterministically with the index so a
	// mis-sequenced loss draw shows up as a different byte stream.
	var writerDone atomic.Bool
	go func() {
		defer writerDone.Store(true)
		for i := 0; i < 40; i++ {
			payload := strings.Repeat(string(rune('a'+i%26)), 20+i*3)
			if _, err := dialed.Write([]byte(payload)); err != nil {
				return
			}
		}
		_ = dialed.Close()
	}()

	var log strings.Builder
	var readerDone atomic.Bool
	go func() {
		defer readerDone.Store(true)
		buf := make([]byte, 4096)
		for {
			n, err := server.Read(buf)
			if n > 0 {
				fmt.Fprintf(&log, "t=%v n=%d crc=%08x\n",
					v.Elapsed(), n, crc32.ChecksumIEEE(buf[:n]))
			}
			if err != nil {
				return
			}
		}
	}()

	if !v.WaitCond(time.Minute, func() bool { return writerDone.Load() && readerDone.Load() }) {
		t.Fatal("transfer did not drain under the virtual clock")
	}
	_ = server.Close()
	v.Quiesce()

	s := f.Stats()
	fmt.Fprintf(&log, "written=%d bytes=%d delivered=%d lost=%d dropped=%d\n",
		s.Written.Load(), s.Bytes.Load(), s.Delivered.Load(), s.Lost.Load(), s.Dropped.Load())
	return log.String()
}

// TestSameSeedByteIdenticalDelivery is the netsim determinism
// contract: under the virtual clock, one seed fixes the entire
// delivery/drop sequence — timestamps, chunk boundaries, checksums and
// loss outcomes — byte for byte across runs, and a different seed
// explores a different sequence.
func TestSameSeedByteIdenticalDelivery(t *testing.T) {
	a := deliveryLog(t, 1234)
	b := deliveryLog(t, 1234)
	if a != b {
		t.Fatalf("same seed diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	c := deliveryLog(t, 1235)
	if a == c {
		t.Fatal("seeds 1234 and 1235 produced identical delivery logs; seed is not reaching the pipes")
	}
}

// TestStatsConservation locks in the chunk accounting the simulation
// harness asserts as an invariant: accepted chunks are exactly
// partitioned into delivered, lost, and dropped — with the orderly-
// close allowance that unread chunks may be stranded (counted written,
// never read), hence ≤.
func TestStatsConservation(t *testing.T) {
	log := deliveryLog(t, 99)
	var written, bytes, delivered, lost, dropped int64
	lines := strings.Split(strings.TrimSpace(log), "\n")
	if _, err := fmt.Sscanf(lines[len(lines)-1],
		"written=%d bytes=%d delivered=%d lost=%d dropped=%d",
		&written, &bytes, &delivered, &lost, &dropped); err != nil {
		t.Fatalf("parsing stats line %q: %v", lines[len(lines)-1], err)
	}
	if written == 0 || bytes == 0 {
		t.Fatal("no traffic recorded")
	}
	if delivered+lost+dropped > written {
		t.Fatalf("conservation violated: delivered %d + lost %d + dropped %d > written %d",
			delivered, lost, dropped, written)
	}
	if lost == 0 {
		t.Error("lossy profile recorded no losses; loss injection is not running")
	}
}
