package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"github.com/alfredo-mw/alfredo/internal/remote"
)

// Invariant is a property checked against the cluster after every
// schedule step (quiescent, so checks never race in-flight work).
type Invariant struct {
	Name  string
	Check func(*Cluster) error
}

// Failure describes the first invariant violation of a run.
type Failure struct {
	// Step is the schedule index after which the invariant broke; -1
	// means the final (post-drain or post-teardown) check.
	Step int
	// Invariant names the violated property.
	Invariant string
	// Err carries the violation detail.
	Err error
}

func (f *Failure) String() string {
	where := "final check"
	if f.Step >= 0 {
		where = fmt.Sprintf("step %d", f.Step)
	}
	return fmt.Sprintf("invariant %q violated at %s: %v", f.Invariant, where, f.Err)
}

// Result is the outcome of one seeded run.
type Result struct {
	Seed int64
	// Trace is the canonical event log (of the minimized run when
	// minimization kicked in).
	Trace *Trace
	// Failure is nil on a passing run.
	Failure *Failure
	// Schedule is the full generated schedule, for diagnostics.
	Schedule []SchedEvent
	// Minimized counts schedule events the minimizer proved irrelevant
	// to the failure (only set on failing runs).
	Minimized int
}

// SchedEvent is one entry of the seeded schedule: a fault or a user
// operation, landing at a fixed virtual instant on a fixed phone.
type SchedEvent struct {
	Step  int
	At    time.Duration
	Kind  string // "invoke", "depinvoke", "pull", "push", "reacquire", "stream", "ustream", "drop", "block", "partition", "loss", "heal"
	Phone int
	Dur   time.Duration
	Prob  float64
}

func (e SchedEvent) describe() string {
	switch e.Kind {
	case "block":
		return fmt.Sprintf("target blackhole %v then drop", e.Dur)
	case "partition":
		return fmt.Sprintf("stall %v", e.Dur)
	case "loss":
		return fmt.Sprintf("out-loss %.2f", e.Prob)
	default:
		return ""
	}
}

// isFault reports whether the minimizer may remove the event. User
// operations — invokes, re-placements, reacquires — are kept: they are
// the workload, not the perturbation.
func (e SchedEvent) isFault() bool {
	switch e.Kind {
	case "invoke", "depinvoke", "pull", "push", "reacquire", "stream", "ustream":
		return false
	}
	return true
}

// generateSchedule derives the run's event schedule from the seed: a
// mix of user operations and faults at strictly increasing virtual
// instants. A "loss" pulse emits a paired "heal" so lossy windows are
// bounded.
func generateSchedule(seed int64, opts Options) []SchedEvent {
	rng := rand.New(rand.NewSource(seed ^ 0x51ed5eed))
	events := make([]SchedEvent, 0, opts.Events+4)
	at := time.Duration(0)
	for len(events) < opts.Events {
		at += 20*time.Millisecond + time.Duration(rng.Intn(180))*time.Millisecond
		ev := SchedEvent{Step: len(events), At: at, Phone: rng.Intn(opts.Phones)}
		switch r := rng.Float64(); {
		case r < 0.18:
			ev.Kind = "invoke"
		case r < 0.28:
			ev.Kind = "depinvoke"
		case r < 0.36:
			ev.Kind = "pull"
		case r < 0.43:
			ev.Kind = "push"
		case r < 0.50:
			ev.Kind = "reacquire"
		case r < 0.58:
			ev.Kind = "stream"
		case r < 0.64:
			ev.Kind = "ustream"
		case r < 0.72:
			ev.Kind = "drop"
		case r < 0.80:
			ev.Kind = "block"
			ev.Dur = 50*time.Millisecond + time.Duration(rng.Intn(350))*time.Millisecond
		case r < 0.90:
			ev.Kind = "partition"
			ev.Dur = 50*time.Millisecond + time.Duration(rng.Intn(200))*time.Millisecond
		default:
			ev.Kind = "loss"
			ev.Prob = 0.05 + 0.20*rng.Float64()
			events = append(events, ev)
			at += 100*time.Millisecond + time.Duration(rng.Intn(200))*time.Millisecond
			ev = SchedEvent{Step: len(events), At: at, Phone: ev.Phone, Kind: "heal"}
		}
		events = append(events, ev)
	}
	return events
}

// Dependency-invoke accounting families (written by internal/core):
// every issued invoke counts once in the first and, when it commits to
// a placement, once in the second. The exactly-once cutover property
// is their equality at quiescence.
const (
	depInvokesFamily  = "alfredo_core_dep_invokes_total"
	depDispatchFamily = "alfredo_core_dep_dispatch_total"
)

// conservedFamilies are the counter families the telemetry-conservation
// invariant audits: monotone phone-side counters that the workload
// moves. The aggregator's belief about a phone may lag its registry
// (reports in flight, dropped, or not yet due) but may never exceed it
// — an overshoot means a report was double-counted or fabricated.
var conservedFamilies = []string{
	"alfredo_remote_invokes_total",
	"alfredo_remote_retries_total",
	"alfredo_remote_fetches_total",
	"alfredo_remote_chunk_cache_hits_total",
}

// builtinInvariants are the properties every run must hold at every
// step.
func builtinInvariants() []Invariant {
	return []Invariant{
		{
			// Chunk conservation: every chunk a pipe accepted is
			// eventually delivered, lost to injection, or dropped by a
			// crash — never double-counted. Orderly closes may strand
			// unread chunks (accepted, never read), hence ≤ not =.
			Name: "netsim-chunk-conservation",
			Check: func(c *Cluster) error {
				s := c.Fabric.Stats()
				w := s.Written.Load()
				d, l, x := s.Delivered.Load(), s.Lost.Load(), s.Dropped.Load()
				if d+l+x > w {
					return fmt.Errorf("delivered %d + lost %d + dropped %d > written %d", d, l, x, w)
				}
				return nil
			},
		},
		{
			// A terminally down link must have degraded its
			// application — controls disabled, typed errors — never a
			// live-looking UI over a dead link.
			Name: "down-implies-degraded",
			Check: func(c *Cluster) error {
				for _, p := range c.Phones {
					app := p.App()
					if p.Session.Link().State() == remote.LinkDown && app != nil && !app.Degraded() {
						return fmt.Errorf("%s: link down but application not degraded", p.Name)
					}
				}
				return nil
			},
		},
		{
			// Cache coherence: every chunk a phone's cache holds must
			// still hash to its key, the byte accounting must sum, and
			// the budget must hold — a corrupted chunk can be dropped or
			// refetched but never silently poison the cache.
			Name: "cache-coherence",
			Check: func(c *Cluster) error {
				for _, p := range c.Phones {
					cache := p.Node.ChunkCache()
					if cache == nil {
						continue
					}
					if err := cache.Validate(); err != nil {
						return fmt.Errorf("%s: %w", p.Name, err)
					}
				}
				return nil
			},
		},
		{
			// Cache chunk conservation: every chunk ever stored is still
			// resident or was evicted — dropped/retransmitted chunks must
			// not double-count, and corrupt arrivals must not count at
			// all. (Phone caches are memory-only, so no disk-loaded
			// entries skew the identity.)
			Name: "cache-chunk-conservation",
			Check: func(c *Cluster) error {
				for _, p := range c.Phones {
					cache := p.Node.ChunkCache()
					if cache == nil {
						continue
					}
					st := cache.Stats()
					if st.Puts-st.Evictions != int64(st.Chunks) {
						return fmt.Errorf("%s: puts %d - evictions %d != resident chunks %d",
							p.Name, st.Puts, st.Evictions, st.Chunks)
					}
					if st.BytesUsed > st.BytesBudget {
						return fmt.Errorf("%s: cache %d bytes used over budget %d",
							p.Name, st.BytesUsed, st.BytesBudget)
					}
				}
				return nil
			},
		},
		{
			// Telemetry conservation: the fleet aggregator's count for a
			// phone never exceeds that phone's own registry — cumulative
			// values plus last-write-wins merging make every drop,
			// reorder or reconnect cost freshness, never correctness.
			Name: "telemetry-conservation",
			Check: func(c *Cluster) error {
				for _, p := range c.Phones {
					for _, fam := range conservedFamilies {
						agg, own := c.Agg.NodeTotal(p.Name, fam), p.Hub.Metrics.Total(fam)
						if agg > own {
							return fmt.Errorf("%s: aggregator has %s = %d, phone registry only %d",
								p.Name, fam, agg, own)
						}
					}
				}
				return nil
			},
		},
		{
			// Placement consistency: PullLogic duplicate-free and agreeing
			// with Deps and the route table on every phone — the single-
			// flight and cutover locking must never let a racing pull/push
			// pair leave the bookkeeping split-brained.
			Name: "placement-consistency",
			Check: func(c *Cluster) error {
				for _, p := range c.Phones {
					app := p.App()
					if app == nil {
						continue
					}
					if err := app.PlacementConsistent(); err != nil {
						return fmt.Errorf("%s: %w", p.Name, err)
					}
				}
				return nil
			},
		},
		{
			// Dispatch conservation: a dependency invoke dispatches to at
			// most one placement (≤ at steps; an invoke between issue and
			// dispatch is legitimately in between). The post-drain check
			// tightens this to exact equality — exactly-once.
			Name: "dep-dispatch-conservation",
			Check: func(c *Cluster) error {
				for _, p := range c.Phones {
					issued := p.Hub.Metrics.Total(depInvokesFamily)
					dispatched := p.Hub.Metrics.Total(depDispatchFamily)
					if dispatched > issued {
						return fmt.Errorf("%s: %d dispatches for %d issued dep invokes (double dispatch)",
							p.Name, dispatched, issued)
					}
				}
				return nil
			},
		},
		{
			// Every dependency invoke that completed returned the right
			// answer — an invoke dispatched onto a retired placement mid-
			// cutover would surface here as a wrong or stale value.
			Name: "dep-results-correct",
			Check: func(c *Cluster) error {
				if n := c.depWrong.Load(); n != 0 {
					return fmt.Errorf("%d dependency invokes returned wrong values", n)
				}
				return nil
			},
		},
		{
			// Goroutine ceiling: fault churn must not accumulate
			// goroutines step over step (each phone/target owns a small
			// bounded set: channel read loop, dispatch workers, link
			// monitor).
			Name: "goroutine-ceiling",
			Check: func(c *Cluster) error {
				limit := c.baseGos + 64 + 50*(len(c.Phones)+len(c.Targets))
				if n := runtime.NumGoroutine(); n > limit {
					return fmt.Errorf("%d goroutines, ceiling %d (baseline %d)", n, limit, c.baseGos)
				}
				return nil
			},
		},
	}
}

// Run executes one seeded simulation: build the cluster, apply the
// seeded schedule step by step, check invariants after every step,
// drain, converge, tear down, and leak-check. On failure the fault
// schedule is minimized — faults whose removal keeps the same
// invariant failing are discarded — and the minimized run's trace is
// returned, still reproducible from the same seed.
func Run(seed int64, opts Options) *Result {
	opts = opts.normalized()
	res := runOnce(seed, opts)
	if res.Failure != nil {
		res = minimize(seed, opts, res)
	}
	return res
}

func runOnce(seed int64, opts Options) *Result {
	schedule := generateSchedule(seed, opts)
	res := &Result{Seed: seed, Schedule: schedule, Trace: &Trace{}}

	c, err := NewCluster(seed, opts)
	if err != nil {
		res.Failure = &Failure{Step: -1, Invariant: "setup", Err: err}
		return res
	}
	res.Trace = c.Trace
	defer c.Close()

	invariants := append(builtinInvariants(), streamInvariants()...)
	invariants = append(invariants, opts.Extra...)
	check := func(step int) *Failure {
		for _, inv := range invariants {
			if err := inv.Check(c); err != nil {
				return &Failure{Step: step, Invariant: inv.Name, Err: err}
			}
		}
		return nil
	}

	// Event times are relative to the end of setup (setup itself costs
	// deterministic virtual time: handshakes, bundle transfers).
	start := c.Clock.Elapsed()
	for i, ev := range schedule {
		if i < len(opts.mask) && opts.mask[i] {
			continue
		}
		c.Clock.Advance(start + ev.At - c.Clock.Elapsed())
		c.apply(ev)
		c.Clock.Quiesce()
		if f := check(ev.Step); f != nil {
			res.Failure = f
			return res
		}
	}

	// Drain: every started operation finishes, every link settles out
	// of Reconnecting, and every channel's pending-exchange maps empty
	// — all within the virtual budget. Requiring quiet channels here
	// (rather than only after the wait) keeps the later pending-ops
	// assertion from sampling a legitimate in-flight protocol exchange,
	// e.g. the resubscription a session issues right after recovery.
	drained := func() bool {
		return c.OpsInFlight() == 0 && c.Converged() && c.pendingOps() == 0 &&
			c.streams.settled()
	}
	settled := c.Eventually(opts.Drain, drained)
	if !settled && c.streams.abortTainted() {
		// A loss window can eat a stream's credit grant, leaving its
		// credited writer waiting forever on a transport that broke its
		// contract. Abort those writers and give the drain one more
		// bounded pass; an untainted stall still fails below.
		settled = c.Eventually(opts.Drain, drained)
	}
	if !settled {
		res.Failure = &Failure{
			Step: -1, Invariant: "convergence",
			Err: fmt.Errorf("ops in flight %d, converged %v, pending ops %d after %v virtual drain",
				c.OpsInFlight(), c.Converged(), c.pendingOps(), opts.Drain),
		}
		return res
	}
	if f := check(-1); f != nil {
		res.Failure = f
		return res
	}
	// Exactly-once dispatch: with the workload drained, every issued
	// dependency invoke must have dispatched to exactly one placement —
	// pulls, pushes and faults landing mid-invoke included. A shortfall
	// is a dropped invoke; an excess is a duplicate.
	for _, p := range c.Phones {
		issued := p.Hub.Metrics.Total(depInvokesFamily)
		dispatched := p.Hub.Metrics.Total(depDispatchFamily)
		if issued != dispatched {
			res.Failure = &Failure{
				Step: -1, Invariant: "dep-dispatch-exactly-once",
				Err: fmt.Errorf("%s: %d dep invokes issued, %d dispatched", p.Name, issued, dispatched),
			}
			return res
		}
	}
	// No pending-call/fetch/ping map entries may outlive the drained,
	// quiescent workload — a nonzero count here is exactly the leak a
	// lost reply frame would cause.
	for _, p := range c.Phones {
		if n := p.Session.Channel().PendingOps(); n != 0 {
			res.Failure = &Failure{
				Step: -1, Invariant: "pending-ops",
				Err: fmt.Errorf("%s: %d pending operations after drain", p.Name, n),
			}
			return res
		}
	}
	// Stream accounting must balance exactly at quiescence: reliable
	// streams that closed cleanly lost nothing, unreliable ones account
	// for every drop, and no phone holds residual stream state.
	if f := c.checkStreamsFinal(); f != nil {
		res.Failure = f
		return res
	}

	// Telemetry convergence: with the workload quiescent, flush a full
	// report from every phone whose link survived, then drive the clock
	// until the aggregator's counts equal each such phone's registry
	// exactly — no loss, no double-counting, across every drop,
	// partition and reconnect the schedule threw. A flush lost in
	// flight is healed by the shipping cadence's periodic full resync,
	// which the budget comfortably covers.
	_ = c.Do(time.Minute, func() error {
		for _, p := range c.Phones {
			if p.Session.Link().State() == remote.LinkUp {
				_ = p.Session.Channel().ShipMetricsNow()
			}
		}
		return nil
	})
	telemetrySettled := c.Eventually(30*time.Second, func() bool {
		for _, p := range c.Phones {
			if p.Session.Link().State() != remote.LinkUp {
				continue // a dead link owes nothing
			}
			for _, fam := range conservedFamilies {
				if c.Agg.NodeTotal(p.Name, fam) != p.Hub.Metrics.Total(fam) {
					return false
				}
			}
		}
		return true
	})
	if !telemetrySettled {
		detail := ""
		for _, p := range c.Phones {
			if p.Session.Link().State() != remote.LinkUp {
				continue
			}
			for _, fam := range conservedFamilies {
				if agg, own := c.Agg.NodeTotal(p.Name, fam), p.Hub.Metrics.Total(fam); agg != own {
					detail += fmt.Sprintf(" %s/%s: agg %d != phone %d;", p.Name, fam, agg, own)
				}
			}
		}
		res.Failure = &Failure{
			Step: -1, Invariant: "telemetry-convergence",
			Err: fmt.Errorf("fleet aggregator never converged to phone registries:%s", detail),
		}
		return res
	}

	c.Close()
	if err := c.LeakCheck(); err != nil {
		res.Failure = &Failure{Step: -1, Invariant: "teardown-leak", Err: err}
	}
	return res
}

// apply lands one schedule event on the cluster.
func (c *Cluster) apply(ev SchedEvent) {
	p := c.Phones[ev.Phone]
	if ev.isFault() {
		c.Trace.add(TraceEvent{
			At: c.Clock.Elapsed(), Step: ev.Step, Kind: ev.Kind,
			Node: p.Name, Detail: ev.describe(),
		})
	}
	switch ev.Kind {
	case "invoke":
		c.StartInvoke(p, ev.Step)
	case "depinvoke":
		c.StartDepInvoke(p, ev.Step)
	case "pull":
		c.StartPull(p, ev.Step)
	case "push":
		c.StartPush(p, ev.Step)
	case "reacquire":
		c.StartReacquire(p, ev.Step)
	case "stream":
		c.StartStream(p, ev.Step, remote.StreamReliable)
	case "ustream":
		c.StartStream(p, ev.Step, remote.StreamUnreliable)
	case "drop":
		if conn := p.LastConn(); conn != nil {
			conn.Drop()
		}
	case "block":
		// Blackhole the phone's target (refusing redials too), then
		// cut the live connection: the reconnect loop has to back off
		// until the blackout lifts.
		c.Fabric.Block(p.target, ev.Dur)
		if conn := p.LastConn(); conn != nil {
			conn.Drop()
		}
	case "partition":
		if conn := p.LastConn(); conn != nil {
			conn.Partition(ev.Dur)
		}
	case "loss":
		p.lossyNow.Store(true)
		p.lossEpochs.Add(1)
		if conn := p.LastConn(); conn != nil {
			conn.SetLoss(0, ev.Prob)
		}
	case "heal":
		p.lossyNow.Store(false)
		if conn := p.LastConn(); conn != nil {
			conn.SetLoss(0, 0)
		}
	}
}

// minimizeBudget caps how many extra runs the minimizer spends.
const minimizeBudget = 40

// minimize greedily removes fault events whose absence keeps the same
// invariant failing, so the reported trace carries only faults that
// matter. Re-running is cheap — each run is pure virtual time.
func minimize(seed int64, opts Options, failing *Result) *Result {
	mask := make([]bool, len(failing.Schedule))
	best := failing
	runs := 0
	for i, ev := range failing.Schedule {
		if !ev.isFault() || runs >= minimizeBudget {
			continue
		}
		mask[i] = true
		opts.mask = mask
		runs++
		if r := runOnce(seed, opts); r.Failure != nil && r.Failure.Invariant == best.Failure.Invariant {
			best = r // still fails the same way without this fault
		} else {
			mask[i] = false // this fault is load-bearing; keep it
		}
	}
	removed := 0
	for _, m := range mask {
		if m {
			removed++
		}
	}
	best.Minimized = removed
	return best
}
