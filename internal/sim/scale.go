package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/service"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/sim/leak"
)

// ScaleOptions parameterize a scale cluster: one serve-side peer
// hosting tenant-scoped services, a small pool of per-tenant client
// peers, and Sessions virtual phone sessions (one remote channel
// each) spread round-robin across the tenants. The zero value is a
// usable default sized for a unit test, not a scale run.
type ScaleOptions struct {
	// Sessions is the number of virtual phone sessions (default 256).
	Sessions int
	// Tenants is the number of tenants, each with its own client peer
	// announcing its identity in the handshake (default 8).
	Tenants int
	// Admission, when non-nil, installs serve-side admission control.
	Admission *remote.AdmissionPolicy
	// ReactorWorkers bounds the serve-side handler pool; zero selects
	// remote.DefaultReactorWorkers.
	ReactorWorkers int
	// WriteBufferBytes sizes each channel's write-coalescing buffer.
	// The scale default is 4 KiB — the 32 KiB production default costs
	// 320 MB at 10k sessions before a single byte moves.
	WriteBufferBytes int
	// PipeDepth bounds each simulated connection's in-flight chunk
	// queue (default 8; the netsim default of 1024 is ~100 KB/conn).
	PipeDepth int
	// Timeout bounds each invocation (default 2s virtual).
	Timeout time.Duration
	// Link is the simulated transport (default netsim.Loopback).
	Link netsim.LinkProfile
	// ConnectBatch bounds concurrent session handshakes during setup
	// (default 512).
	ConnectBatch int
}

func (o ScaleOptions) normalized() ScaleOptions {
	if o.Sessions <= 0 {
		o.Sessions = 256
	}
	if o.Tenants <= 0 {
		o.Tenants = 8
	}
	if o.Tenants > o.Sessions {
		o.Tenants = o.Sessions
	}
	if o.WriteBufferBytes <= 0 {
		o.WriteBufferBytes = 4 << 10
	}
	if o.PipeDepth <= 0 {
		o.PipeDepth = 8
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Link.Name == "" {
		o.Link = netsim.Loopback
	}
	if o.ConnectBatch <= 0 {
		o.ConnectBatch = 512
	}
	return o
}

// ScaleSession is one virtual phone session: a single remote channel
// from its tenant's client peer to the serve-side peer.
type ScaleSession struct {
	Index  int
	Tenant string
	Ch     *remote.Channel
	// EchoID is the serve-side id of the session's tenant-scoped echo
	// service, resolved from its lease.
	EchoID int64
}

// scaleTenant is one tenant's client-side endpoint: a lightweight
// framework + peer whose handshake announces the tenant identity.
// Many sessions share it; each session is a separate channel.
type scaleTenant struct {
	name string
	fw   *module.Framework
	peer *remote.Peer
}

// ScaleCluster is a running massive-multitenancy deployment on the
// virtual clock: Sessions channels from Tenants client peers into one
// serve-side peer, with tenant-scoped services and (optionally)
// admission control. Everything that varies is derived from Seed.
type ScaleCluster struct {
	Seed   int64
	Opts   ScaleOptions
	Clock  *clock.Virtual
	Fabric *netsim.Fabric
	Hub    *obs.Hub

	Server   *remote.Peer
	serverFW *module.Framework

	tenants  []*scaleTenant
	Sessions []*ScaleSession

	// echoIDs maps tenant name -> serve-side id of its scoped echo
	// service, learned from the leases. Cross-tenant probes invoke
	// another tenant's id and must see NO_SUCH_SERVICE.
	echoIDs map[string]int64

	rng      *rand.Rand
	listener *netsim.Listener
	baseGos  int
	closed   bool
}

// scaleTenantName returns the canonical tenant identity for index i.
func scaleTenantName(i int) string { return fmt.Sprintf("tenant-%03d", i) }

// ScaleEchoInterface is the tenant-scoped service every session
// invokes. Its Whoami method returns the owning tenant's name, so a
// reply is itself an isolation witness: a session that ever receives
// a name other than its own has crossed the boundary.
const ScaleEchoInterface = "scale.Echo"

func scaleEchoService(tenant string) *remote.MethodTable {
	return remote.NewService(ScaleEchoInterface).
		Method("Whoami", nil, "string", func(args []any) (any, error) {
			return tenant, nil
		}).
		Method("Add", []string{"int", "int"}, "int", func(args []any) (any, error) {
			return args[0].(int64) + args[1].(int64), nil
		})
}

// NewScaleCluster builds the serve-side peer, registers one scoped
// echo service per tenant, and connects all sessions in seeded
// batches. Setup runs on the virtual clock; the returned cluster is
// quiescent at a deterministic virtual instant.
func NewScaleCluster(seed int64, opts ScaleOptions) (*ScaleCluster, error) {
	opts = opts.normalized()
	c := &ScaleCluster{
		Seed:    seed,
		Opts:    opts,
		Clock:   clock.NewVirtual(seed),
		Hub:     obs.NewHub(),
		echoIDs: make(map[string]int64, opts.Tenants),
		rng:     rand.New(rand.NewSource(seed)),
		baseGos: runtime.NumGoroutine(),
	}
	c.Fabric = netsim.NewFabric().WithClock(c.Clock).WithSeed(seed).WithPipeDepth(opts.PipeDepth)

	c.serverFW = module.NewFramework(module.Config{Name: "scale-host"})
	server, err := remote.NewPeer(remote.Config{
		Framework:        c.serverFW,
		Timeout:          opts.Timeout,
		ReactorWorkers:   opts.ReactorWorkers,
		Admission:        opts.Admission,
		WriteBufferBytes: opts.WriteBufferBytes,
		Obs:              c.Hub,
		Clock:            c.Clock,
		Seed:             seed + 17,
	})
	if err != nil {
		return nil, err
	}
	c.Server = server

	// Register every tenant's scoped service before any session
	// connects, so leases are complete at handshake time and no
	// broadcast storm walks tens of thousands of channels.
	for i := 0; i < opts.Tenants; i++ {
		tenant := scaleTenantName(i)
		_, err := c.serverFW.Registry().Register(
			[]string{ScaleEchoInterface}, scaleEchoService(tenant),
			service.Properties{
				remote.PropExported: true,
				remote.PropTenant:   tenant,
			}, "scale")
		if err != nil {
			c.Close()
			return nil, err
		}
	}

	l, err := c.Fabric.Listen(server.ID())
	if err != nil {
		c.Close()
		return nil, err
	}
	c.listener = l
	go func() { _ = server.Serve(l) }()

	for i := 0; i < opts.Tenants; i++ {
		tenant := scaleTenantName(i)
		fw := module.NewFramework(module.Config{Name: "scale-client-" + tenant})
		peer, err := remote.NewPeer(remote.Config{
			Framework:        fw,
			Timeout:          opts.Timeout,
			WriteBufferBytes: opts.WriteBufferBytes,
			HelloProps:       map[string]any{remote.HelloTenantProp: tenant},
			Obs:              c.Hub,
			Clock:            c.Clock,
			Seed:             seed + int64(100+i),
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.tenants = append(c.tenants, &scaleTenant{name: tenant, fw: fw, peer: peer})
	}

	if err := c.connectAll(); err != nil {
		c.Close()
		return nil, fmt.Errorf("sim: scale setup: %w", err)
	}
	return c, nil
}

// connectAll dials every session in bounded concurrent batches, all
// driven on the virtual clock. Concurrent handshakes share virtual
// instants, so a batch costs a handful of clock steps regardless of
// its size.
func (c *ScaleCluster) connectAll() error {
	total := c.Opts.Sessions
	c.Sessions = make([]*ScaleSession, total)
	for start := 0; start < total; start += c.Opts.ConnectBatch {
		end := start + c.Opts.ConnectBatch
		if end > total {
			end = total
		}
		var firstErr atomic.Value
		err := c.Do(time.Minute, func() error {
			var wg sync.WaitGroup
			for i := start; i < end; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := c.connectSession(i); err != nil {
						firstErr.CompareAndSwap(nil, err)
					}
				}()
			}
			wg.Wait()
			return nil
		})
		if err != nil {
			return err
		}
		if e := firstErr.Load(); e != nil {
			return e.(error)
		}
	}
	// Resolve the per-tenant echo ids once from one lease per tenant.
	for _, s := range c.Sessions {
		if _, ok := c.echoIDs[s.Tenant]; ok {
			continue
		}
		c.echoIDs[s.Tenant] = s.EchoID
	}
	return nil
}

func (c *ScaleCluster) connectSession(i int) error {
	tn := c.tenants[i%len(c.tenants)]
	conn, err := c.Fabric.Dial(c.Server.ID(), c.Opts.Link)
	if err != nil {
		return fmt.Errorf("session %d dial: %w", i, err)
	}
	ch, err := tn.peer.Connect(conn)
	if err != nil {
		return fmt.Errorf("session %d connect: %w", i, err)
	}
	s := &ScaleSession{Index: i, Tenant: tn.name, Ch: ch}
	svc, ok := ch.FindRemoteService(ScaleEchoInterface)
	if !ok {
		return fmt.Errorf("session %d (%s): lease is missing %s", i, tn.name, ScaleEchoInterface)
	}
	s.EchoID = svc.ID
	c.Sessions[i] = s
	return nil
}

// Do runs fn on a fresh goroutine while driving the virtual clock and
// returns fn's error, failing if fn is still blocked after budget of
// virtual time.
func (c *ScaleCluster) Do(budget time.Duration, fn func() error) error {
	var err error
	var done atomic.Bool
	go func() {
		err = fn()
		done.Store(true)
	}()
	if !c.Clock.WaitCond(budget, done.Load) {
		return fmt.Errorf("sim: scale operation still blocked after %v virtual time", budget)
	}
	return err
}

// RoundStats summarizes one invoke round.
type RoundStats struct {
	OK         int
	Overloaded int
	Failed     int
}

// RunRound fires one Whoami invocation on each of n seeded-sampled
// sessions concurrently and waits for all of them. Every reply is
// checked against the session's own tenant (the isolation witness);
// an admission rejection is counted, not failed — the caller decides
// what the policy should have admitted. Any other error fails the
// round.
func (c *ScaleCluster) RunRound(n int) (RoundStats, error) {
	if n > len(c.Sessions) {
		n = len(c.Sessions)
	}
	sample := c.rng.Perm(len(c.Sessions))[:n]
	var stats RoundStats
	var mu sync.Mutex
	var firstErr atomic.Value
	err := c.Do(time.Minute, func() error {
		var wg sync.WaitGroup
		for _, idx := range sample {
			s := c.Sessions[idx]
			if s == nil || closedCh(s.Ch) {
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err := s.Ch.Invoke(s.EchoID, "Whoami", nil)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					if v != s.Tenant {
						firstErr.CompareAndSwap(nil, fmt.Errorf(
							"session %d (%s): Whoami crossed the tenant boundary: got %v",
							s.Index, s.Tenant, v))
						return
					}
					stats.OK++
				case errors.Is(err, remote.ErrOverloaded):
					stats.Overloaded++
				default:
					stats.Failed++
					firstErr.CompareAndSwap(nil, fmt.Errorf(
						"session %d (%s): Whoami: %w", s.Index, s.Tenant, err))
				}
			}()
		}
		wg.Wait()
		return nil
	})
	if err != nil {
		return stats, err
	}
	if e := firstErr.Load(); e != nil {
		return stats, e.(error)
	}
	return stats, nil
}

// CrossTenantProbe invokes another tenant's echo id from n sampled
// sessions and returns an error unless every probe is rejected with
// NO_SUCH_SERVICE — cross-tenant ids must be indistinguishable from
// absent ones — and strands nothing on the channel. An admission
// rejection (which fires before lookup and reveals nothing about the
// foreign id either) is the one other acceptable outcome: a shut-off
// tenant cannot reach the lookup path at all.
func (c *ScaleCluster) CrossTenantProbe(n int) error {
	if c.Opts.Tenants < 2 {
		return fmt.Errorf("sim: cross-tenant probe needs at least 2 tenants")
	}
	if n > len(c.Sessions) {
		n = len(c.Sessions)
	}
	sample := c.rng.Perm(len(c.Sessions))[:n]
	var firstErr atomic.Value
	err := c.Do(time.Minute, func() error {
		var wg sync.WaitGroup
		for _, idx := range sample {
			s := c.Sessions[idx]
			if s == nil || closedCh(s.Ch) {
				continue
			}
			// The "next" tenant's scoped service: a real id on the
			// serve side, invisible to this session.
			var foreign int64
			for t, id := range c.echoIDs {
				if t != s.Tenant {
					foreign = id
					break
				}
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := s.Ch.Invoke(foreign, "Whoami", nil)
				if !errors.Is(err, remote.ErrNoSuchService) && !errors.Is(err, remote.ErrOverloaded) {
					firstErr.CompareAndSwap(nil, fmt.Errorf(
						"session %d (%s): foreign id %d: err=%v, want NO_SUCH_SERVICE",
						s.Index, s.Tenant, foreign, err))
				}
			}()
		}
		wg.Wait()
		return nil
	})
	if err != nil {
		return err
	}
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// CheckInvariants audits the cluster's global accounting and a seeded
// sample of sessions. It is cheap enough to run after every round.
//
//   - Shard sums: every striped table's per-shard counts sum to its
//     global length, and the serve-side channel table matches the
//     number of live sessions.
//   - Gauge accounting: the hub's channels-active gauge equals the
//     serve-side channel count plus every client peer's — no channel
//     is half-registered.
//   - Lease isolation (sampled): a session's lease contains only its
//     own tenant's scoped service.
//   - Quiescence (sampled): no pending ops are stranded on a channel
//     between rounds.
func (c *ScaleCluster) CheckInvariants() error {
	live := 0
	for _, s := range c.Sessions {
		if s != nil && !closedCh(s.Ch) {
			live++
		}
	}

	if got := sumInts(c.Server.ChannelShardCounts()); got != c.Server.ChannelCount() {
		return fmt.Errorf("serve-side channel shards sum to %d, table holds %d", got, c.Server.ChannelCount())
	}
	if got := sumInts(c.Server.ExportedShardCounts()); got != c.Server.ExportedCount() {
		return fmt.Errorf("serve-side export shards sum to %d, table holds %d", got, c.Server.ExportedCount())
	}
	if got := c.Server.ChannelCount(); got != live {
		return fmt.Errorf("serve side holds %d channels, %d sessions live", got, live)
	}
	clientChans := 0
	for _, tn := range c.tenants {
		if got := sumInts(tn.peer.ChannelShardCounts()); got != tn.peer.ChannelCount() {
			return fmt.Errorf("%s channel shards sum to %d, table holds %d", tn.name, got, tn.peer.ChannelCount())
		}
		clientChans += tn.peer.ChannelCount()
	}
	gauge := c.Hub.Metrics.Gauge("alfredo_remote_channels_active").Value()
	if want := int64(c.Server.ChannelCount() + clientChans); gauge != want {
		return fmt.Errorf("channels-active gauge = %d, tables hold %d", gauge, want)
	}

	// Sampled per-session checks: bound the audit so it stays O(sample)
	// regardless of cluster size.
	sampleN := 64
	if sampleN > len(c.Sessions) {
		sampleN = len(c.Sessions)
	}
	for _, idx := range c.rng.Perm(len(c.Sessions))[:sampleN] {
		s := c.Sessions[idx]
		if s == nil || closedCh(s.Ch) {
			continue
		}
		for _, svc := range s.Ch.RemoteServices() {
			owner, scoped := svc.Props[remote.PropTenant].(string)
			if scoped && owner != s.Tenant {
				return fmt.Errorf("session %d (%s): lease leaks %s's service %d",
					s.Index, s.Tenant, owner, svc.ID)
			}
		}
		if n := s.Ch.PendingOps(); n != 0 {
			return fmt.Errorf("session %d (%s): %d ops stranded between rounds", s.Index, s.Tenant, n)
		}
	}
	return nil
}

// GoroutineCeiling returns the maximum goroutine count this cluster
// should ever reach while serving: the pre-cluster baseline, two read
// loops per session, the serve-side reactor pool, and slack for
// transient handshake and driver goroutines. The point of the bound:
// handler concurrency is O(pool), not O(sessions × per-channel slots).
func (c *ScaleCluster) GoroutineCeiling() int {
	workers := c.Opts.ReactorWorkers
	if workers == 0 {
		workers = remote.DefaultReactorWorkers
	}
	return c.baseGos + 2*len(c.Sessions) + workers + 64
}

// closedCh reports whether a channel has torn down.
func closedCh(ch *remote.Channel) bool {
	select {
	case <-ch.Done():
		return true
	default:
		return false
	}
}

func sumInts(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// CloseSession tears one session's channel down (both ends notice via
// the transport). Used by the churn stress to shrink the cluster.
func (c *ScaleCluster) CloseSession(i int) {
	s := c.Sessions[i]
	if s == nil {
		return
	}
	s.Ch.Close()
}

// ReconnectSession re-dials a previously closed session slot.
func (c *ScaleCluster) ReconnectSession(i int) error {
	return c.connectSession(i)
}

// drainTimers fires any timers left registered so goroutines parked on
// virtual deadlines unblock during teardown.
func (c *ScaleCluster) drainTimers() {
	for i := 0; i < 100000; i++ {
		if !c.Clock.Step() {
			return
		}
	}
}

// Close tears the cluster down: client peers (which closes every
// session channel), the listener, then the serve-side peer, all
// driven on the virtual clock. Idempotent.
func (c *ScaleCluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	_ = c.Do(5*time.Minute, func() error {
		for _, tn := range c.tenants {
			tn.peer.Close()
			_ = tn.fw.Shutdown()
		}
		if c.listener != nil {
			_ = c.listener.Close()
		}
		if c.Server != nil {
			c.Server.Close()
		}
		if c.serverFW != nil {
			_ = c.serverFW.Shutdown()
		}
		return nil
	})
	c.drainTimers()
	c.Clock.Quiesce()
}

// LeakCheck verifies that, post-Close, the channels-active gauge is
// zero and goroutines returned to the pre-cluster baseline.
func (c *ScaleCluster) LeakCheck() error {
	if n := c.Hub.Metrics.Gauge("alfredo_remote_channels_active").Value(); n != 0 {
		return fmt.Errorf("sim: %d channels still active after scale teardown", n)
	}
	if n, ok := leak.Settle(c.baseGos+leak.Slack, 10*time.Second); !ok {
		return fmt.Errorf("sim: goroutine leak after scale teardown: %d goroutines, baseline %d",
			n, c.baseGos)
	}
	return nil
}
