//go:build !race

package sim

// raceEnabled reports whether the race detector is compiled in. The
// scale suite downsizes its session counts under -race: the detector
// multiplies memory and scheduling cost per goroutine, and the point
// of the race build is interleaving coverage, not raw scale.
const raceEnabled = false
