package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceEvent is one observation made during a simulation run: a
// scheduled event being applied, an operation completing, or a link
// state transition. At is virtual time since clock.Epoch, so two runs
// of the same seed produce identical events.
type TraceEvent struct {
	// At is the virtual instant of the observation.
	At time.Duration
	// Step is the schedule index the observation belongs to, or -1 for
	// asynchronous observations (op completions, link transitions).
	Step int
	// Kind classifies the event: "drop", "block", "partition", "loss",
	// "heal", "invoke", "invoke-skip", "invoke-done", "link".
	Kind string
	// Node names the phone involved ("" for cluster-wide events).
	Node string
	// Detail is a deterministic human-readable payload.
	Detail string
}

func (e TraceEvent) String() string {
	step := "     "
	if e.Step >= 0 {
		step = fmt.Sprintf("#%-4d", e.Step)
	}
	return fmt.Sprintf("%-12s %s %-12s %-10s %s", e.At, step, e.Kind, e.Node, e.Detail)
}

// Trace is the ordered event log of one run. Appends are safe from any
// goroutine; String canonicalizes the order so that two runs of the
// same seed render byte-identically even though asynchronous
// observations may be appended in different goroutine interleavings
// within one virtual instant.
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
}

func (t *Trace) add(e TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns the canonically sorted event list.
func (t *Trace) Events() []TraceEvent {
	t.mu.Lock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Detail < b.Detail
	})
	return out
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

func (t *Trace) String() string {
	var b strings.Builder
	for _, e := range t.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
