package sim

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/remote"
)

// scaleSessionCount picks the session count for a scale test: full in
// normal mode, downsized in -short mode and under the race detector
// (interleaving coverage, not raw scale, is the point there).
func scaleSessionCount(t *testing.T, full, short int) int {
	t.Helper()
	n := full
	if testing.Short() {
		n = short
	}
	if raceEnabled && n > 512 {
		n = 512
	}
	return n
}

// scalePolicy is the admission policy the scale suite runs under: a
// serve-side in-flight bound well below the session count (so the
// reactor and admission controller actually engage), a generous rate,
// and tenant-000 shut off entirely to generate deterministic
// rejections every round.
func scalePolicy() *remote.AdmissionPolicy {
	return &remote.AdmissionPolicy{
		MaxInFlight: 128,
		RatePerSec:  100000,
		Burst:       200000,
		Weights:     map[string]int{scaleTenantName(0): 0},
	}
}

// TestScaleTenThousandSessions is the headline scale scenario: ten
// thousand concurrent virtual phone sessions (two thousand in -short
// mode) across 16 tenants against one serve-side peer, swept over
// multiple seeds. Every round fires a seeded sample of invocations,
// then audits the per-event invariants: shard sums match the global
// tables and the active gauge, leases never leak a foreign tenant's
// service, replies never cross the tenant boundary, rejections strand
// nothing, and handler goroutines stay O(reactor pool).
func TestScaleTenThousandSessions(t *testing.T) {
	sessions := scaleSessionCount(t, 10000, 2000)
	seeds := []int64{1, 9}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c, err := NewScaleCluster(seed, ScaleOptions{
				Sessions:  sessions,
				Tenants:   16,
				Admission: scalePolicy(),
			})
			if err != nil {
				t.Fatalf("NewScaleCluster: %v", err)
			}
			defer c.Close()

			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("invariants after setup: %v", err)
			}
			if got, ceil := runtime.NumGoroutine(), c.GoroutineCeiling(); got > ceil {
				t.Fatalf("goroutines after setup = %d, ceiling %d", got, ceil)
			}

			shutOff := 0
			for _, s := range c.Sessions {
				if s.Tenant == scaleTenantName(0) {
					shutOff++
				}
			}
			for round := 0; round < 3; round++ {
				stats, err := c.RunRound(512)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if stats.OK == 0 {
					t.Fatalf("round %d: no invocation succeeded (%+v)", round, stats)
				}
				if stats.Failed != 0 {
					t.Fatalf("round %d: %d hard failures (%+v)", round, stats.Failed, stats)
				}
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("invariants after round %d: %v", round, err)
				}
				if got, ceil := runtime.NumGoroutine(), c.GoroutineCeiling(); got > ceil {
					t.Fatalf("goroutines after round %d = %d, ceiling %d", round, got, ceil)
				}
			}

			// The shut-off tenant is rejected every time, typed, with
			// nothing stranded on its channel.
			var probe *ScaleSession
			for _, s := range c.Sessions {
				if s.Tenant == scaleTenantName(0) {
					probe = s
					break
				}
			}
			var probeErr error
			if err := c.Do(time.Minute, func() error {
				_, probeErr = probe.Ch.Invoke(probe.EchoID, "Whoami", nil)
				return nil
			}); err != nil {
				t.Fatalf("shut-off probe: %v", err)
			}
			if !errors.Is(probeErr, remote.ErrOverloaded) {
				t.Fatalf("shut-off tenant invoke = %v, want ErrOverloaded", probeErr)
			}
			if n := probe.Ch.PendingOps(); n != 0 {
				t.Fatalf("shut-off rejection stranded %d ops", n)
			}

			if err := c.CrossTenantProbe(128); err != nil {
				t.Fatalf("cross-tenant probe: %v", err)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("invariants after probes: %v", err)
			}

			c.Close()
			if err := c.LeakCheck(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestScaleShardContentionStress churns a two-thousand-session
// cluster: every iteration closes a seeded slice of sessions, runs an
// invoke round over the survivors, audits the shard/gauge accounting
// mid-churn, then reconnects the closed slots. This is the test that
// puts connect, teardown and invoke traffic on the striped tables at
// the same time. It stays in -short mode (and the race job) by
// design — shard contention is exactly what -race should see.
func TestScaleShardContentionStress(t *testing.T) {
	sessions := scaleSessionCount(t, 2000, 2000)
	c, err := NewScaleCluster(7, ScaleOptions{
		Sessions:  sessions,
		Tenants:   8,
		Admission: scalePolicy(),
	})
	if err != nil {
		t.Fatalf("NewScaleCluster: %v", err)
	}
	defer c.Close()

	churn := sessions / 10
	for iter := 0; iter < 3; iter++ {
		victims := c.rng.Perm(len(c.Sessions))[:churn]
		if err := c.Do(time.Minute, func() error {
			for _, idx := range victims {
				c.CloseSession(idx)
			}
			return nil
		}); err != nil {
			t.Fatalf("iter %d close: %v", iter, err)
		}
		// Both ends notice teardown through the transport; wait until
		// the serve side has dropped the victims before auditing.
		want := len(c.Sessions) - churn
		if !c.Clock.WaitCond(30*time.Second, func() bool {
			return c.Server.ChannelCount() == want
		}) {
			t.Fatalf("iter %d: serve side still holds %d channels, want %d",
				iter, c.Server.ChannelCount(), want)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("invariants mid-churn (iter %d): %v", iter, err)
		}
		if stats, err := c.RunRound(256); err != nil {
			t.Fatalf("iter %d round: %v (%+v)", iter, err, stats)
		}
		var reErr error
		if err := c.Do(time.Minute, func() error {
			for _, idx := range victims {
				if err := c.ReconnectSession(idx); err != nil {
					reErr = err
					return nil
				}
			}
			return nil
		}); err != nil {
			t.Fatalf("iter %d reconnect: %v", iter, err)
		}
		if reErr != nil {
			t.Fatalf("iter %d reconnect: %v", iter, reErr)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("invariants post-reconnect (iter %d): %v", iter, err)
		}
	}

	c.Close()
	if err := c.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestScalePerSessionMemoryBudget is the memory gate: at ten thousand
// sessions (two thousand in -short mode) the heap cost per session —
// both endpoints, both transport directions included — must stay
// under the budget. The budget has headroom over the measured
// baseline (see EXPERIMENTS.md) so it trips on regressions like an
// oversized per-channel buffer, not on allocator noise.
func TestScalePerSessionMemoryBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector multiplies per-goroutine memory; budget holds for the plain build")
	}
	sessions := scaleSessionCount(t, 10000, 2000)
	const budgetPerSession = 96 << 10

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	c, err := NewScaleCluster(3, ScaleOptions{Sessions: sessions, Tenants: 16})
	if err != nil {
		t.Fatalf("NewScaleCluster: %v", err)
	}
	defer c.Close()

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	heap := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	perSession := heap / int64(sessions)
	t.Logf("sessions=%d heap=%d bytes (%d per session, budget %d)",
		sessions, heap, perSession, budgetPerSession)
	if perSession > budgetPerSession {
		t.Fatalf("per-session heap = %d bytes, budget %d", perSession, budgetPerSession)
	}

	// The budget must hold for a *working* cluster, not an idle one.
	if stats, err := c.RunRound(256); err != nil || stats.OK == 0 {
		t.Fatalf("round on measured cluster: %v (%+v)", err, stats)
	}
}
