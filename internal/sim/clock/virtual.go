package clock

import (
	"container/heap"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Epoch is where virtual time starts: an arbitrary fixed instant, so
// every simulation run begins at the same Now() and virtual timestamps
// are comparable across runs and seeds.
var Epoch = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// Virtual is a deterministic simulated clock. Time never moves on its
// own: it advances only through Step or Advance, firing pending timers
// in (deadline, registration-order) order — ties at the same instant
// are broken by the seed's shuffle, so different seeds explore
// different same-instant interleavings while the same seed always
// fires them identically.
//
// Goroutines blocked in Sleep or on timer channels are woken by the
// goroutine driving the clock; Quiesce lets the driver wait until the
// woken work has settled (registered its next timers, delivered its
// messages) before taking the next step. A timer registered with a
// deadline at or before the current virtual time fires immediately, so
// a late registration is never silently skipped.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	seq     int64
	timers  vtimerHeap
	rng     *rand.Rand
	stepped int64 // total Step/Advance fire groups, for diagnostics

	// gen counts clock mutations (register, stop, fire); Quiesce uses
	// its stability, together with the goroutine count, to detect that
	// the woken work has settled.
	gen atomic.Int64
}

// NewVirtual returns a virtual clock starting at Epoch, with
// same-instant timer ordering fixed by seed.
func NewVirtual(seed int64) *Virtual {
	return &Virtual{now: Epoch, rng: rand.New(rand.NewSource(seed))}
}

type vtimer struct {
	at     time.Time
	seq    int64
	ch     chan time.Time
	period time.Duration // > 0 re-arms after each fire (ticker)
	idx    int           // heap index, -1 when not queued
}

type vtimerHeap []*vtimer

func (h vtimerHeap) Len() int { return len(h) }
func (h vtimerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h vtimerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *vtimerHeap) Push(x any) {
	t := x.(*vtimer)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *vtimerHeap) Pop() any {
	old := *h
	t := old[len(old)-1]
	old[len(old)-1] = nil
	t.idx = -1
	*h = old[:len(old)-1]
	return t
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since returns virtual time elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Until returns virtual time remaining until t.
func (v *Virtual) Until(t time.Time) time.Duration { return t.Sub(v.Now()) }

// Elapsed returns virtual time elapsed since Epoch.
func (v *Virtual) Elapsed() time.Duration { return v.Since(Epoch) }

// Sleep blocks until d of virtual time passes (immediately for d<=0,
// with a yield so a spinning caller cannot starve the driver).
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		runtime.Gosched()
		return
	}
	<-v.NewTimer(d).C
}

// After returns a channel firing after d of virtual time. As with the
// wall clock, prefer NewTimer in loops — an unfired After timer stays
// registered (and keeps WaitCond stepping) until it fires.
func (v *Virtual) After(d time.Duration) <-chan time.Time { return v.NewTimer(d).C }

// NewTimer returns a stoppable one-shot virtual timer.
func (v *Virtual) NewTimer(d time.Duration) *Timer {
	vt := &vtimer{ch: make(chan time.Time, 1), idx: -1}
	v.arm(vt, d)
	return &Timer{
		C:     vt.ch,
		stop:  func() bool { return v.remove(vt) },
		reset: func(d time.Duration) bool { return v.rearm(vt, d) },
	}
}

// NewTicker returns a repeating virtual ticker (d must be positive).
func (v *Virtual) NewTicker(d time.Duration) *Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	vt := &vtimer{ch: make(chan time.Time, 1), period: d, idx: -1}
	v.arm(vt, d)
	return &Ticker{C: vt.ch, stop: func() { v.remove(vt) }}
}

// arm queues vt to fire after d; d<=0 fires it immediately.
func (v *Virtual) arm(vt *vtimer, d time.Duration) {
	v.mu.Lock()
	v.gen.Add(1)
	v.seq++
	vt.seq = v.seq
	vt.at = v.now.Add(d)
	if d <= 0 {
		v.deliver(vt)
		v.mu.Unlock()
		return
	}
	heap.Push(&v.timers, vt)
	v.mu.Unlock()
}

func (v *Virtual) remove(vt *vtimer) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.gen.Add(1)
	if vt.idx < 0 {
		return false
	}
	heap.Remove(&v.timers, vt.idx)
	return true
}

func (v *Virtual) rearm(vt *vtimer, d time.Duration) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.gen.Add(1)
	was := vt.idx >= 0
	if was {
		heap.Remove(&v.timers, vt.idx)
	}
	v.seq++
	vt.seq = v.seq
	vt.at = v.now.Add(d)
	if d <= 0 {
		v.deliver(vt)
		return was
	}
	heap.Push(&v.timers, vt)
	return was
}

// deliver sends the fire time without blocking (a lagging ticker
// receiver drops ticks, like time.Ticker) and re-arms periodics.
// Caller holds v.mu.
func (v *Virtual) deliver(vt *vtimer) {
	select {
	case vt.ch <- v.now:
	default:
	}
	if vt.period > 0 {
		v.seq++
		vt.seq = v.seq
		vt.at = vt.at.Add(vt.period)
		if !vt.at.After(v.now) {
			// The driver advanced past several periods at once; skip
			// to the next tick after now rather than burst-firing.
			vt.at = v.now.Add(vt.period)
		}
		heap.Push(&v.timers, vt)
	}
}

// NextDeadline reports the earliest pending timer deadline.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.timers) == 0 {
		return time.Time{}, false
	}
	return v.timers[0].at, true
}

// Pending returns the number of registered, unfired timers.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.timers)
}

// Steps returns how many fire groups have executed, a cheap progress
// measure for harness diagnostics.
func (v *Virtual) Steps() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stepped
}

// Step advances virtual time to the earliest pending deadline and
// fires every timer registered for that exact instant (same-instant
// order shuffled by the clock's seed). It reports false when no timer
// is pending.
func (v *Virtual) Step() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.timers) == 0 {
		return false
	}
	v.fireGroup(v.timers[0].at)
	return true
}

// fireGroup fires all timers due at exactly `at`, advancing now to at.
// Caller holds v.mu.
func (v *Virtual) fireGroup(at time.Time) {
	v.now = at
	v.stepped++
	v.gen.Add(1)
	group := make([]*vtimer, 0, 4)
	for len(v.timers) > 0 && v.timers[0].at.Equal(at) {
		group = append(group, heap.Pop(&v.timers).(*vtimer))
	}
	// Same-instant firing order is a seed-controlled shuffle: distinct
	// seeds explore distinct interleavings, one seed always replays the
	// same one.
	v.rng.Shuffle(len(group), func(i, j int) { group[i], group[j] = group[j], group[i] })
	for _, vt := range group {
		v.deliver(vt)
	}
}

// Advance moves virtual time forward by d, firing every timer that
// falls due and quiescing between fire groups so that work triggered
// by one group can register earlier timers before the next group is
// chosen.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	v.mu.Unlock()
	for {
		v.Quiesce()
		v.mu.Lock()
		if len(v.timers) == 0 || v.timers[0].at.After(target) {
			if target.After(v.now) {
				v.now = target
				v.gen.Add(1)
			}
			v.mu.Unlock()
			break
		}
		v.fireGroup(v.timers[0].at)
		v.mu.Unlock()
	}
	v.Quiesce()
}

// Quiescence tuning: a round yields the scheduler quiesceYields times,
// and the clock is considered settled after quiesceStable consecutive
// rounds with no clock mutations and a stable goroutine count.
const (
	quiesceYields = 64
	quiesceStable = 4
	quiesceMax    = 20000
)

// Quiesce blocks until goroutines woken by the last advance have
// settled: no clock registrations/stops and no goroutine creation or
// exit across several full scheduler-yield rounds. It never sleeps
// wall time — settling is scheduler yields only — so a sweep of
// hundreds of seeded runs stays CPU-bound and fast.
func (v *Virtual) Quiesce() {
	lastGen := v.gen.Load()
	lastN := runtime.NumGoroutine()
	stable := 0
	for i := 0; i < quiesceMax; i++ {
		for j := 0; j < quiesceYields; j++ {
			runtime.Gosched()
		}
		g, n := v.gen.Load(), runtime.NumGoroutine()
		if g == lastGen && n == lastN {
			if stable++; stable >= quiesceStable {
				return
			}
			continue
		}
		stable = 0
		lastGen, lastN = g, n
	}
}

// WaitCond drives the clock until cond holds, no more than budget of
// virtual time. It quiesces, checks, and steps to the next deadline in
// a loop — the virtual-clock replacement for sleep-polling loops — and
// reports whether cond held. When no timers remain pending it allows a
// few extra settles (in-flight non-timer work may still complete the
// condition) before giving up.
func (v *Virtual) WaitCond(budget time.Duration, cond func() bool) bool {
	deadline := v.Now().Add(budget)
	idle := 0
	for {
		v.Quiesce()
		if cond() {
			return true
		}
		next, ok := v.NextDeadline()
		if !ok || next.After(deadline) {
			if idle++; idle >= 3 {
				return cond()
			}
			continue
		}
		idle = 0
		v.Step()
	}
}
