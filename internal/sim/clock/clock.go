// Package clock is the time seam of the simulation harness: a Clock
// interface over the handful of time primitives the stack uses (now,
// sleep, one-shot timers, tickers), a wall implementation that is the
// production default, and a deterministic virtual implementation
// (virtual.go) under which the whole stack — netsim links, remote
// retries and reconnects, core session recovery, controller polls —
// runs on simulated time.
//
// The package sits below everything: it imports only the standard
// library, so netsim, remote, core and script can all depend on it
// while internal/sim (the harness, which imports those layers) reuses
// it without a cycle.
package clock

import "time"

// Clock abstracts the time operations used by the stack. The zero
// value of a Config field of this type is nil; call Or to default it
// to the wall clock.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Since returns the time elapsed on this clock since t.
	Since(t time.Time) time.Duration
	// Until returns the duration on this clock until t.
	Until(t time.Time) time.Duration
	// Sleep blocks for d of this clock's time (returns immediately for
	// d <= 0).
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time after d.
	// Prefer NewTimer in loops: an After channel cannot be stopped and
	// holds its timer until it fires.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a stoppable one-shot timer firing after d.
	NewTimer(d time.Duration) *Timer
	// NewTicker returns a repeating ticker with period d (d must be
	// positive).
	NewTicker(d time.Duration) *Ticker
}

// Timer is a stoppable one-shot timer from a Clock. Like time.Timer,
// C receives the firing time once; Stop prevents an unfired timer
// from firing (it does not drain C).
type Timer struct {
	C     <-chan time.Time
	stop  func() bool
	reset func(d time.Duration) bool
}

// Stop cancels the timer, reporting whether it was still pending.
func (t *Timer) Stop() bool { return t.stop() }

// Reset re-arms the timer for d, reporting whether it was still
// pending. Like time.Timer.Reset it must only be used on stopped or
// fired timers whose channel has been drained.
func (t *Timer) Reset(d time.Duration) bool { return t.reset(d) }

// Ticker delivers clock ticks on C at a fixed period; slow receivers
// see ticks dropped, never queued beyond one.
type Ticker struct {
	C    <-chan time.Time
	stop func()
}

// Stop turns the ticker off (it does not close C).
func (t *Ticker) Stop() { t.stop() }

// Wall is the production clock: plain stdlib time.
var Wall Clock = wall{}

// Or returns c, or the wall clock when c is nil — the idiom for
// defaulting a Config field.
func Or(c Clock) Clock {
	if c == nil {
		return Wall
	}
	return c
}

type wall struct{}

func (wall) Now() time.Time                  { return time.Now() }
func (wall) Since(t time.Time) time.Duration { return time.Since(t) }
func (wall) Until(t time.Time) time.Duration { return time.Until(t) }
func (wall) Sleep(d time.Duration)           { time.Sleep(d) }
func (wall) After(d time.Duration) <-chan time.Time {
	return time.After(d)
}

func (wall) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, stop: t.Stop, reset: t.Reset}
}

func (wall) NewTicker(d time.Duration) *Ticker {
	t := time.NewTicker(d)
	return &Ticker{C: t.C, stop: t.Stop}
}
