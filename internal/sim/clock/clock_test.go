package clock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWallDefaulting(t *testing.T) {
	if Or(nil) != Wall {
		t.Fatal("Or(nil) != Wall")
	}
	v := NewVirtual(1)
	if Or(v) != Clock(v) {
		t.Fatal("Or(v) != v")
	}
}

func TestVirtualNowAdvances(t *testing.T) {
	v := NewVirtual(1)
	if !v.Now().Equal(Epoch) {
		t.Fatalf("fresh virtual clock at %v, want %v", v.Now(), Epoch)
	}
	v.Advance(3 * time.Second)
	if got := v.Elapsed(); got != 3*time.Second {
		t.Fatalf("Elapsed = %v, want 3s", got)
	}
}

func TestVirtualTimerFiresInOrder(t *testing.T) {
	v := NewVirtual(1)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			v.Sleep(d)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, d)
	}
	v.WaitCond(time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 3
	})
	wg.Wait()
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("fire order = %v, want [1 2 0]", order)
	}
	if v.Elapsed() != 30*time.Millisecond {
		t.Fatalf("elapsed %v, want 30ms", v.Elapsed())
	}
}

func TestVirtualTimerStop(t *testing.T) {
	v := NewVirtual(1)
	tm := v.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer = false")
	}
	if tm.Stop() {
		t.Fatal("second Stop = true")
	}
	if v.Pending() != 0 {
		t.Fatalf("stopped timer still pending (%d)", v.Pending())
	}
	v.Advance(2 * time.Second)
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestVirtualTimerReset(t *testing.T) {
	v := NewVirtual(1)
	tm := v.NewTimer(time.Hour)
	tm.Stop()
	tm.Reset(time.Millisecond)
	v.Advance(2 * time.Millisecond)
	select {
	case at := <-tm.C:
		if got := at.Sub(Epoch); got != time.Millisecond {
			t.Fatalf("fired at +%v, want +1ms", got)
		}
	default:
		t.Fatal("reset timer did not fire")
	}
}

func TestVirtualImmediateTimer(t *testing.T) {
	v := NewVirtual(1)
	tm := v.NewTimer(0)
	select {
	case <-tm.C:
	default:
		t.Fatal("zero-duration timer did not fire immediately")
	}
}

func TestVirtualTicker(t *testing.T) {
	v := NewVirtual(1)
	var ticks atomic.Int64
	done := make(chan struct{})
	tk := v.NewTicker(10 * time.Millisecond)
	go func() {
		defer close(done)
		for range tk.C {
			if ticks.Add(1) == 3 {
				return
			}
		}
	}()
	v.WaitCond(time.Second, func() bool { return ticks.Load() >= 3 })
	<-done
	tk.Stop()
	if v.Elapsed() != 30*time.Millisecond {
		t.Fatalf("3 ticks took %v of virtual time, want 30ms", v.Elapsed())
	}
}

// TestVirtualSameSeedSameSchedule locks in the determinism contract
// at the clock layer: the same seed yields the same step sequence for
// the same timer population, run after run.
func TestVirtualSameSeedSameSchedule(t *testing.T) {
	run := func(seed int64) []time.Duration {
		v := NewVirtual(seed)
		// Staggered plus colliding deadlines, including a ticker.
		for _, d := range []time.Duration{5, 5, 3, 9, 3, 5} {
			v.NewTimer(d * time.Millisecond)
		}
		tk := v.NewTicker(2 * time.Millisecond)
		go func() {
			for range tk.C {
			}
		}()
		var steps []time.Duration
		for i := 0; i < 12 && v.Step(); i++ {
			steps = append(steps, v.Elapsed())
		}
		tk.Stop()
		return steps
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed, different step counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
		}
	}
}

func TestWaitCondBudgetExpires(t *testing.T) {
	v := NewVirtual(1)
	// A condition that never holds, with a ticker to keep deadlines
	// pending: WaitCond must stop at its virtual budget, not loop.
	tk := v.NewTicker(time.Second)
	defer tk.Stop()
	go func() {
		for range tk.C {
		}
	}()
	if v.WaitCond(5*time.Second, func() bool { return false }) {
		t.Fatal("WaitCond reported success for an impossible condition")
	}
	if v.Elapsed() > 7*time.Second {
		t.Fatalf("WaitCond overran its budget: %v elapsed", v.Elapsed())
	}
}
