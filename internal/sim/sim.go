// Package sim is the deterministic whole-stack simulation harness: an
// in-process cluster of phone nodes and target nodes wired over the
// netsim fabric, run entirely on a virtual clock. One int64 seed fixes
// everything that varies — the fault schedule, netsim latency jitter
// and loss draws, retry jitter, and same-instant timer firing order —
// so any run, including a failing one, replays exactly from its seed
// (FoundationDB-style simulation testing).
//
// Two entry points:
//
//   - NewCluster builds the cluster and lets a test script faults and
//     assertions by hand (the ported chaos scenarios).
//   - Run generates a seeded schedule of faults and user operations,
//     drives it, and checks invariants after every step (the property
//     runner behind `make sim`).
package sim

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/obs"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/sim/clock"
	"github.com/alfredo-mw/alfredo/internal/sim/leak"
)

// CheckGoroutines snapshots the goroutine count and registers a test
// cleanup that fails if the count has not returned to the baseline by
// the end of the test. It is a re-export of leak.CheckGoroutines; test
// packages that internal/sim itself imports (remote, core) use the
// leak package directly to avoid an import cycle.
func CheckGoroutines(t leak.TB) {
	t.Helper()
	leak.CheckGoroutines(t)
}

// Options parameterize a simulated cluster and, for Run, its generated
// schedule. The zero value is a usable default.
type Options struct {
	// Phones is the number of client nodes (default 2).
	Phones int
	// Targets is the number of target nodes; phones connect round-robin
	// (default 1).
	Targets int
	// Events is the number of scheduled events Run generates (default 12).
	Events int
	// Link is the simulated radio profile (default netsim.WLAN11b).
	Link netsim.LinkProfile
	// Timeout bounds each remote invocation (default 400ms virtual).
	Timeout time.Duration
	// Retry governs invocation retries and link reconnection (default
	// 3 attempts, 20ms base delay, 3s reconnect budget).
	Retry remote.RetryPolicy
	// UI builds views and controllers during acquisition; off by
	// default since the property runner exercises the proxy pipeline.
	UI bool
	// Drain bounds the virtual time allowed after the last event for
	// in-flight operations to finish and links to converge (default
	// Retry.ReconnectBudget + Timeout + 3s).
	Drain time.Duration
	// Extra invariants are checked after every schedule step, in
	// addition to the built-in ones. Used by tests to plant a failing
	// invariant and assert that failures replay deterministically.
	Extra []Invariant

	// mask disables individual schedule events during trace
	// minimization; nil applies all of them.
	mask []bool
}

func (o Options) normalized() Options {
	if o.Phones <= 0 {
		o.Phones = 2
	}
	if o.Targets <= 0 {
		o.Targets = 1
	}
	if o.Events <= 0 {
		o.Events = 12
	}
	if o.Link.Name == "" {
		o.Link = netsim.WLAN11b
	}
	if o.Timeout <= 0 {
		o.Timeout = 400 * time.Millisecond
	}
	if o.Retry.MaxAttempts == 0 {
		o.Retry = remote.RetryPolicy{
			MaxAttempts:     3,
			BaseDelay:       20 * time.Millisecond,
			ReconnectBudget: 3 * time.Second,
		}
	}
	if o.Drain <= 0 {
		o.Drain = o.Retry.ReconnectBudget + o.Timeout + 3*time.Second
	}
	return o
}

// Phone is one simulated client node with its resilient session and
// acquired shop application. Each phone owns its own telemetry hub —
// ground truth for the conservation invariant that audits what the
// host-side aggregator believes about this phone.
type Phone struct {
	Name    string
	Node    *core.Node
	Session *core.Session
	Hub     *obs.Hub

	target string
	busy   atomic.Bool

	// lossyNow / lossEpochs track injected-loss windows on the phone's
	// connection. Streams have no retransmit layer — a frame eaten by
	// link-level loss on a surviving channel is gone — so the exact
	// stream-conservation checks skip streams whose lifetime overlapped
	// a lossy window (the step-wise ≤ bounds still apply).
	lossyNow   atomic.Bool
	lossEpochs atomic.Int64

	mu    sync.Mutex
	app   *core.Application
	conns []*netsim.Conn
}

// App returns the phone's current application. Reacquire events swap
// it — and nil it out when a reacquire fails mid-fault — so readers go
// through the accessor rather than a bare field.
func (p *Phone) App() *core.Application {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.app
}

func (p *Phone) setApp(a *core.Application) {
	p.mu.Lock()
	p.app = a
	p.mu.Unlock()
}

// LastConn returns the phone's most recently dialed connection — the
// one faults should land on.
func (p *Phone) LastConn() *netsim.Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.conns) == 0 {
		return nil
	}
	return p.conns[len(p.conns)-1]
}

// Cluster is a running simulated deployment: N phones leasing the shop
// application from M targets over one netsim fabric, all on one virtual
// clock. The targets share the host-side Hub and ingest phone telemetry
// into Agg (the fleet aggregator); each phone keeps its own hub, so the
// telemetry-conservation invariant can compare the aggregator's view of
// a phone against that phone's own registry.
type Cluster struct {
	Seed    int64
	Opts    Options
	Clock   *clock.Virtual
	Fabric  *netsim.Fabric
	Hub     *obs.Hub
	Agg     *obs.Aggregator
	Phones  []*Phone
	Targets []*core.Node
	Trace   *Trace

	listeners []*netsim.Listener
	baseGos   int
	opsActive atomic.Int64
	// streams is the ground-truth ledger of stream events: what each
	// writer sent versus what the target collectors observed, audited by
	// the stream conservation invariants.
	streams *streamLedger
	// depWrong counts dependency invokes that returned the wrong value —
	// a cutover dispatching an invoke to a stale placement would show up
	// here; the dep-results-correct invariant requires it to stay zero.
	depWrong atomic.Int64
	closed   bool
}

func targetAddr(i int) string { return fmt.Sprintf("sim-target-%d", i) }

// NewCluster builds and connects a cluster. Setup (dialing, handshakes,
// acquisition) itself runs on the virtual clock, driven internally, so
// the returned cluster is quiescent at a deterministic virtual instant.
func NewCluster(seed int64, opts Options) (*Cluster, error) {
	opts = opts.normalized()
	vclk := clock.NewVirtual(seed)
	c := &Cluster{
		Seed:    seed,
		Opts:    opts,
		Clock:   vclk,
		Hub:     obs.NewHubOn(vclk),
		Agg:     obs.NewAggregator(),
		Trace:   &Trace{},
		streams: newStreamLedger(),
		baseGos: runtime.NumGoroutine(),
	}
	c.Fabric = netsim.NewFabric().WithClock(c.Clock).WithSeed(seed)

	for i := 0; i < opts.Targets; i++ {
		target, err := core.NewNode(core.NodeConfig{
			Name:          targetAddr(i),
			Profile:       device.Notebook(),
			InvokeTimeout: opts.Timeout,
			Obs:           c.Hub,
			Clock:         c.Clock,
			Seed:          seed + int64(1000+i),
			// Every target ingests phone telemetry into the shared fleet
			// aggregator — the subject of the conservation invariant.
			Aggregator: c.Agg,
			// A window a little above one stream event's total bytes:
			// credit replenishment (not just the initial grant) runs on
			// every stream, and a stalled collector would jam writers
			// instead of ballooning memory.
			StreamWindowBytes: 32 << 10,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Targets = append(c.Targets, target)
		// The stream collector verifies and tallies every sim stream;
		// peer-level handlers must be installed before channels exist.
		target.Peer().HandleStreams(c.streamCollector)
		if err := target.RegisterApp(shop.New().App()); err != nil {
			c.Close()
			return nil, err
		}
		l, err := c.Fabric.Listen(targetAddr(i))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.listeners = append(c.listeners, l)
		target.Serve(l)
	}

	for i := 0; i < opts.Phones; i++ {
		name := fmt.Sprintf("sim-phone-%d", i)
		hub := obs.NewHubOn(c.Clock)
		// Pre-install the shop logic's smart proxy code so pull events
		// exercise on-device execution, not just proxy plumbing.
		proxyCode := remote.NewProxyCodeRegistry()
		if err := shop.RegisterProxyCode(proxyCode); err != nil {
			c.Close()
			return nil, err
		}
		node, err := core.NewNode(core.NodeConfig{
			Name:          name,
			Profile:       device.Nokia9300i(),
			InvokeTimeout: opts.Timeout,
			Retry:         opts.Retry,
			// A memory-only chunk cache per phone: reacquire events
			// exercise the warm-start path, and the cache-coherence /
			// chunk-conservation invariants audit it after every step.
			CacheBytes: 4 << 20,
			ProxyCode:  proxyCode,
			Obs:        hub,
			Clock:      c.Clock,
			Seed:       seed + int64(1+i),
			// Ship this phone's registry to its target every virtual
			// second, so faults land mid-shipment and the conservation
			// invariant exercises drops, reorders and resyncs.
			MetricsInterval: time.Second,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Phones = append(c.Phones, &Phone{
			Name:   name,
			Node:   node,
			Hub:    hub,
			target: targetAddr(i % opts.Targets),
		})
	}

	// Dialing and acquisition block on virtual timers (RTTs, transfer
	// times), so they must run off the driver goroutine while the
	// driver steps the clock.
	if err := c.Do(time.Minute, c.connectAll); err != nil {
		c.Close()
		return nil, fmt.Errorf("sim: cluster setup: %w", err)
	}
	return c, nil
}

func (c *Cluster) connectAll() error {
	for _, p := range c.Phones {
		p := p
		session, err := p.Node.ConnectResilient(func() (net.Conn, error) {
			conn, err := c.Fabric.Dial(p.target, c.Opts.Link)
			if err != nil {
				return nil, err
			}
			p.mu.Lock()
			p.conns = append(p.conns, conn.(*netsim.Conn))
			p.mu.Unlock()
			return conn, nil
		})
		if err != nil {
			return fmt.Errorf("%s connect: %w", p.Name, err)
		}
		p.Session = session
		session.Link().OnStateChange(func(st remote.LinkState, _ *remote.Channel) {
			c.Trace.add(TraceEvent{
				At: c.Clock.Elapsed(), Step: -1, Kind: "link",
				Node: p.Name, Detail: st.String(),
			})
		})
		app, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{SkipUI: !c.Opts.UI})
		if err != nil {
			return fmt.Errorf("%s acquire: %w", p.Name, err)
		}
		p.setApp(app)
	}
	return nil
}

// Do runs fn on a fresh goroutine while driving the virtual clock, and
// returns fn's error once it finishes. It fails if fn is still blocked
// after `budget` of virtual time — the harness's answer to "this call
// would have hung forever".
func (c *Cluster) Do(budget time.Duration, fn func() error) error {
	var err error
	var done atomic.Bool
	go func() {
		err = fn()
		done.Store(true)
	}()
	if !c.Clock.WaitCond(budget, done.Load) {
		return fmt.Errorf("sim: operation still blocked after %v virtual time", budget)
	}
	return err
}

// Eventually drives the clock until cond holds, for at most `budget`
// of virtual time, and reports whether it did. It replaces the
// sleep-poll loops of wall-clock tests.
func (c *Cluster) Eventually(budget time.Duration, cond func() bool) bool {
	return c.Clock.WaitCond(budget, cond)
}

// OpsInFlight reports how many started operations have not completed.
func (c *Cluster) OpsInFlight() int64 { return c.opsActive.Load() }

// pendingOps sums the pending-exchange map sizes (calls, fetches,
// pings) across every phone's live channel.
func (c *Cluster) pendingOps() int {
	total := 0
	for _, p := range c.Phones {
		total += p.Session.Channel().PendingOps()
	}
	return total
}

// StartInvoke launches one user operation — Categories on the phone's
// shop lease — on its own goroutine, recording launch and completion
// in the trace. At most one operation per phone is in flight at a
// time: per-pipe write order is what keeps netsim delivery times
// deterministic, so a phone never races two of its own calls. step is
// the schedule index for the trace (-1 for scripted scenarios).
func (c *Cluster) StartInvoke(p *Phone, step int) {
	app := p.App()
	if app == nil {
		c.Trace.add(TraceEvent{
			At: c.Clock.Elapsed(), Step: step, Kind: "invoke-skip",
			Node: p.Name, Detail: "no application (reacquire failed)",
		})
		return
	}
	if !p.busy.CompareAndSwap(false, true) {
		c.Trace.add(TraceEvent{
			At: c.Clock.Elapsed(), Step: step, Kind: "invoke-skip",
			Node: p.Name, Detail: "previous call still in flight",
		})
		return
	}
	c.Trace.add(TraceEvent{
		At: c.Clock.Elapsed(), Step: step, Kind: "invoke",
		Node: p.Name, Detail: "Categories",
	})
	c.opsActive.Add(1)
	go func() {
		v, err := app.Invoke("Categories")
		detail := describeOutcome(v, err)
		c.Trace.add(TraceEvent{
			At: c.Clock.Elapsed(), Step: -1, Kind: "invoke-done",
			Node: p.Name, Detail: detail,
		})
		p.busy.Store(false)
		c.opsActive.Add(-1)
	}()
}

// StartReacquire launches a release-and-reacquire of the phone's shop
// lease on its own goroutine: the old application is released locally,
// then the session acquires the same interface again. With the phone's
// chunk cache holding the bundle, the second acquisition is the
// warm-start path — only the manifest moves unless the service changed.
// A failed reacquire (fault mid-flight) leaves the phone without an
// application; invoke events skip until a later reacquire succeeds.
func (c *Cluster) StartReacquire(p *Phone, step int) {
	if !p.busy.CompareAndSwap(false, true) {
		c.Trace.add(TraceEvent{
			At: c.Clock.Elapsed(), Step: step, Kind: "reacquire-skip",
			Node: p.Name, Detail: "previous call still in flight",
		})
		return
	}
	c.Trace.add(TraceEvent{
		At: c.Clock.Elapsed(), Step: step, Kind: "reacquire",
		Node: p.Name, Detail: shop.InterfaceName,
	})
	c.opsActive.Add(1)
	go func() {
		if old := p.App(); old != nil {
			old.Release()
		}
		app, err := p.Session.Acquire(shop.InterfaceName, core.AcquireOptions{SkipUI: !c.Opts.UI})
		detail := ""
		if err != nil {
			p.setApp(nil)
			detail = "err=" + err.Error()
		} else {
			p.setApp(app)
			detail = "ok mode=" + app.Fetch.Mode
		}
		c.Trace.add(TraceEvent{
			At: c.Clock.Elapsed(), Step: -1, Kind: "reacquire-done",
			Node: p.Name, Detail: detail,
		})
		p.busy.Store(false)
		c.opsActive.Add(-1)
	}()
}

// startPlacementOp is the shared busy-guarded launcher behind the
// re-placement events: like invokes, at most one operation per phone is
// in flight at a time, so per-pipe write order — and with it netsim
// delivery timing — stays deterministic.
func (c *Cluster) startPlacementOp(p *Phone, step int, kind string, detail string, op func(app *core.Application) string) {
	app := p.App()
	if app == nil {
		c.Trace.add(TraceEvent{
			At: c.Clock.Elapsed(), Step: step, Kind: kind + "-skip",
			Node: p.Name, Detail: "no application (reacquire failed)",
		})
		return
	}
	if !p.busy.CompareAndSwap(false, true) {
		c.Trace.add(TraceEvent{
			At: c.Clock.Elapsed(), Step: step, Kind: kind + "-skip",
			Node: p.Name, Detail: "previous call still in flight",
		})
		return
	}
	c.Trace.add(TraceEvent{
		At: c.Clock.Elapsed(), Step: step, Kind: kind,
		Node: p.Name, Detail: detail,
	})
	c.opsActive.Add(1)
	go func() {
		out := op(app)
		c.Trace.add(TraceEvent{
			At: c.Clock.Elapsed(), Step: -1, Kind: kind + "-done",
			Node: p.Name, Detail: out,
		})
		p.busy.Store(false)
		c.opsActive.Add(-1)
	}()
}

// StartPull launches a runtime pull of the shop's movable logic tier —
// the PullDependency half of live re-placement. Pulls landing during
// faults may fail (fetch over a dead link); the trace records the
// outcome and the placement invariants must hold either way.
func (c *Cluster) StartPull(p *Phone, step int) {
	c.startPlacementOp(p, step, "pull", shop.LogicInterface, func(app *core.Application) string {
		if err := app.PullDependency(shop.LogicInterface); err != nil {
			return "err=" + err.Error()
		}
		local, epoch := app.DependencyLocal(shop.LogicInterface)
		return fmt.Sprintf("ok local=%v epoch=%d", local, epoch)
	})
}

// StartPush launches the reverse move: PushDependency returns the
// logic tier to the target, draining in-flight invokes losslessly.
// Pushing while remote is a documented no-op.
func (c *Cluster) StartPush(p *Phone, step int) {
	c.startPlacementOp(p, step, "push", shop.LogicInterface, func(app *core.Application) string {
		if err := app.PushDependency(shop.LogicInterface); err != nil {
			return "err=" + err.Error()
		}
		local, epoch := app.DependencyLocal(shop.LogicInterface)
		return fmt.Sprintf("ok local=%v epoch=%d", local, epoch)
	})
}

// StartDepInvoke launches one dependency invocation through the current
// placement — the workload the exactly-once cutover property audits.
// The argument is derived from the step so results are deterministic
// and verifiable.
func (c *Cluster) StartDepInvoke(p *Phone, step int) {
	arg := int64(100 + step)
	want := shop.FormatPrice(arg)
	c.startPlacementOp(p, step, "depinvoke", fmt.Sprintf("FormatPrice(%d)", arg), func(app *core.Application) string {
		v, err := app.InvokeDependency(shop.LogicInterface, "FormatPrice", arg)
		if err != nil {
			return "err=" + err.Error()
		}
		if s, ok := v.(string); !ok || s != want {
			c.depWrong.Add(1)
			return fmt.Sprintf("WRONG got=%v want=%s", v, want)
		}
		return "ok " + want
	})
}

// describeOutcome renders an operation result deterministically: value
// shapes and typed error strings only contain seed-derived quantities.
func describeOutcome(v any, err error) string {
	if err != nil {
		return "err=" + err.Error()
	}
	if list, ok := v.([]any); ok {
		return fmt.Sprintf("ok items=%d", len(list))
	}
	return fmt.Sprintf("ok %T", v)
}

// Converged reports whether every phone has settled: its link is Up,
// Down, or Closed (not mid-reconnect), and a terminally down link has
// a degraded application. An app degraded on a live link is accepted —
// that is the documented outcome of a failed recovery attempt ("stays
// degraded; next LinkUp retries") and is still a clean degrade.
func (c *Cluster) Converged() bool {
	for _, p := range c.Phones {
		st := p.Session.Link().State()
		switch st {
		case remote.LinkReconnecting:
			return false
		case remote.LinkDown, remote.LinkClosed:
			// A nil application (failed reacquire) is as settled as a
			// degraded one: there is no live-looking UI over the dead
			// link.
			if app := p.App(); app != nil && !app.Degraded() {
				return false
			}
		}
	}
	return true
}

// drainTimers fires any timers left registered (bounded, in case a
// ticker re-arms) so goroutines parked on virtual deadlines unblock
// during teardown.
func (c *Cluster) drainTimers() {
	for i := 0; i < 10000; i++ {
		if !c.Clock.Step() {
			return
		}
	}
}

// Close tears the cluster down: phone nodes (sessions, links,
// channels), listeners, then target nodes. Teardown itself is driven
// on the virtual clock so goroutines blocked on virtual deadlines can
// run to completion. Idempotent.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	_ = c.Do(time.Minute, func() error {
		for _, p := range c.Phones {
			if p.Session != nil {
				p.Session.Close()
			}
			if p.Node != nil {
				p.Node.Close()
			}
		}
		for _, l := range c.listeners {
			_ = l.Close()
		}
		for _, t := range c.Targets {
			t.Close()
		}
		return nil
	})
	c.drainTimers()
	c.Clock.Quiesce()
}

// LeakCheck verifies that, post-Close, goroutines returned to the
// pre-cluster baseline and no channel is still accounted active in any
// node's telemetry hub (host-side and every phone's). Returns nil when
// clean.
func (c *Cluster) LeakCheck() error {
	active := c.Hub.Metrics.Gauge("alfredo_remote_channels_active").Value()
	for _, p := range c.Phones {
		active += p.Hub.Metrics.Gauge("alfredo_remote_channels_active").Value()
	}
	if active != 0 {
		return fmt.Errorf("sim: %d channels still active after teardown", active)
	}
	if n, ok := leak.Settle(c.baseGos+leak.Slack, 2*time.Second); !ok {
		return fmt.Errorf("sim: goroutine leak: %d goroutines, baseline %d\n%s",
			n, c.baseGos, leak.Stacks())
	}
	return nil
}
