package sim

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"sync"

	"github.com/alfredo-mw/alfredo/internal/remote"
)

// Stream workload parameters. Each stream event writes a fixed chunk
// train: one oversized head chunk (forcing segmentation and reassembly
// on credit-negotiated channels) followed by small chunks. The total is
// near the targets' receive window, so replenishment — not just the
// initial grant — is exercised on every stream.
const (
	streamHeadBytes  = 20 << 10
	streamChunkBytes = 1 << 10
	simStreamPrefix  = "sim-stream-"
)

// streamChunk builds chunk #seq: an 8-byte big-endian sequence number
// followed by a seq-derived byte pattern, so the collector detects
// reordering, corruption and gaps — not just miscounts.
func streamChunk(seq int64, size int) []byte {
	p := make([]byte, size)
	binary.BigEndian.PutUint64(p, uint64(seq))
	fill := byte(0x5a + seq*13)
	for i := 8; i < len(p); i++ {
		p[i] = fill + byte(i)
	}
	return p
}

// checkStreamChunk validates the pattern and returns the sequence
// number.
func checkStreamChunk(p []byte) (int64, error) {
	if len(p) < 8 {
		return -1, fmt.Errorf("runt chunk (%d bytes)", len(p))
	}
	seq := int64(binary.BigEndian.Uint64(p))
	fill := byte(0x5a + seq*13)
	for i := 8; i < len(p); i++ {
		if p[i] != fill+byte(i) {
			return seq, fmt.Errorf("chunk %d corrupt at byte %d", seq, i)
		}
	}
	return seq, nil
}

// streamTally is the ground truth for one stream event: what the writer
// actually sent versus what the target's collector observed. The stream
// conservation invariants compare the two.
type streamTally struct {
	name     string
	reliable bool
	phone    *Phone
	// Loss taint: exactness is only enforceable when no injected-loss
	// window overlapped the stream's lifetime (see Phone.lossyNow).
	lossyAtStart bool
	lossEpoch    int64

	mu         sync.Mutex
	sent       int64 // chunks whose Write returned nil
	senderDone bool
	closedOK   bool // every write and the Close succeeded
	openFailed bool // StreamOpen never left the phone

	rcvd        int64
	dropped     int64 // receiver-side drop count at stream end
	readerDone  bool
	readerClean bool // reader ended in io.EOF (clean close delivered)
	violations  []string
}

func (t *streamTally) violate(format string, args ...any) {
	t.violations = append(t.violations, fmt.Sprintf(format, args...))
}

// tainted reports whether an injected-loss window overlapped this
// stream's lifetime. The mux assumes a reliable transport (TCP in a
// real deployment); a loss window can eat any single frame — open,
// data, credit or close — so tainted streams keep the ≤ and ordering
// bounds but are exempt from exactness and liveness.
func (t *streamTally) tainted() bool {
	return t.lossyAtStart || t.phone.lossEpochs.Load() != t.lossEpoch
}

// streamLedger tracks every stream event of a run plus the live writers
// whose credit books the flow invariant audits.
type streamLedger struct {
	mu      sync.Mutex
	tallies []*streamTally
	byName  map[string]*streamTally
	writers []writerEntry
}

type writerEntry struct {
	w *remote.StreamWriter
	t *streamTally
}

func newStreamLedger() *streamLedger {
	return &streamLedger{byName: make(map[string]*streamTally)}
}

func (l *streamLedger) register(t *streamTally) {
	l.mu.Lock()
	l.tallies = append(l.tallies, t)
	l.byName[t.name] = t
	l.mu.Unlock()
}

func (l *streamLedger) lookup(name string) *streamTally {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.byName[name]
}

func (l *streamLedger) addWriter(w *remote.StreamWriter, t *streamTally) {
	l.mu.Lock()
	l.writers = append(l.writers, writerEntry{w: w, t: t})
	l.mu.Unlock()
}

func (l *streamLedger) snapshot() ([]*streamTally, []writerEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*streamTally(nil), l.tallies...), append([]writerEntry(nil), l.writers...)
}

// settled reports whether every stream event has resolved: the writer
// goroutine finished and the target-side reader reached its end (or the
// open never made it out). Two escape hatches, both for streams the
// final exactness check already skips: a sender that finished with an
// error (!closedOK) rode a channel that died — its reader either never
// came to exist (open swallowed by a blackhole) or will be woken by
// channel teardown; and loss-tainted streams, where a lost StreamClose
// leaves the reader parked until teardown — the transport's fault, not
// a mux leak. Part of the drain condition.
func (l *streamLedger) settled() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, t := range l.tallies {
		t.mu.Lock()
		done := t.senderDone && (t.readerDone || t.openFailed || !t.closedOK || t.tainted())
		t.mu.Unlock()
		if !done {
			return false
		}
	}
	return true
}

// abortTainted aborts writers of loss-tainted streams and reports
// whether any were. A credited writer whose grant (or whose StreamOpen)
// was eaten by a loss window would otherwise wait forever; Abort wakes
// it with an error so the drain can complete.
func (l *streamLedger) abortTainted() bool {
	l.mu.Lock()
	entries := append([]writerEntry(nil), l.writers...)
	l.mu.Unlock()
	any := false
	for _, e := range entries {
		if e.t.tainted() {
			_ = e.w.Abort("sim: loss window violated transport reliability")
			any = true
		}
	}
	return any
}

// streamCollector is the target-side handler for sim streams: it
// verifies chunk integrity and ordering as it consumes, and records the
// stream's final accounting for the conservation invariants.
func (c *Cluster) streamCollector(_ *remote.Channel, r *remote.StreamReader) {
	if !strings.HasPrefix(r.Name, simStreamPrefix) {
		for {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	}
	t := c.streams.lookup(r.Name)
	last := int64(-1)
	for {
		chunk, err := r.Next()
		if err != nil {
			if t != nil {
				t.mu.Lock()
				t.readerDone = true
				t.readerClean = err == io.EOF
				t.dropped = r.Dropped()
				t.mu.Unlock()
			}
			return
		}
		seq, verr := checkStreamChunk(chunk)
		if t == nil {
			continue
		}
		t.mu.Lock()
		t.rcvd++
		// Integrity and ordering hold on any reliable transport, but an
		// injected-loss window can eat one frame of a segmented chunk
		// and splice the next chunk's bytes onto the dangling partial —
		// a corrupt-looking merge that is the link's fault, not the
		// mux's. Exempt tainted streams, like the exactness checks do.
		if verr != nil && !t.tainted() {
			t.violate("%v", verr)
		}
		// Both classes deliver in send order, never backwards or twice.
		// Gaps on reliable streams are caught by the final exactness
		// check (rcvd == sent with strictly increasing seqs implies
		// gap-free), which exempts loss-tainted streams.
		if seq <= last && !t.tainted() {
			t.violate("stream went backwards: seq %d after %d", seq, last)
		}
		last = seq
		t.mu.Unlock()
	}
}

// StartStream launches one stream user operation: the phone opens a
// stream of the given class to its target, writes the seeded chunk
// train (one segmented head chunk, then small chunks), and closes. The
// busy guard keeps it serialized with the phone's other operations, so
// per-pipe write order stays deterministic.
func (c *Cluster) StartStream(p *Phone, step int, class remote.StreamClass) {
	kind := "stream"
	if class == remote.StreamUnreliable {
		kind = "ustream"
	}
	if !p.busy.CompareAndSwap(false, true) {
		c.Trace.add(TraceEvent{
			At: c.Clock.Elapsed(), Step: step, Kind: kind + "-skip",
			Node: p.Name, Detail: "previous call still in flight",
		})
		return
	}
	chunks := int64(6 + step%6)
	name := fmt.Sprintf("%s%s-%d", simStreamPrefix, p.Name, step)
	t := &streamTally{
		name:         name,
		reliable:     class == remote.StreamReliable,
		phone:        p,
		lossyAtStart: p.lossyNow.Load(),
		lossEpoch:    p.lossEpochs.Load(),
	}
	// Register before the open frame can reach the target: the
	// collector looks the tally up by name on arrival.
	c.streams.register(t)
	c.Trace.add(TraceEvent{
		At: c.Clock.Elapsed(), Step: step, Kind: kind,
		Node: p.Name, Detail: fmt.Sprintf("%s chunks=%d", name, chunks),
	})
	c.opsActive.Add(1)
	go func() {
		detail := c.runStream(p, t, class, chunks)
		c.Trace.add(TraceEvent{
			At: c.Clock.Elapsed(), Step: -1, Kind: kind + "-done",
			Node: p.Name, Detail: detail,
		})
		p.busy.Store(false)
		c.opsActive.Add(-1)
	}()
}

func (c *Cluster) runStream(p *Phone, t *streamTally, class remote.StreamClass, chunks int64) string {
	w, err := p.Session.Channel().OpenStreamClass(t.name, class, nil)
	if err != nil {
		t.mu.Lock()
		t.openFailed = true
		t.senderDone = true
		t.mu.Unlock()
		return "open err=" + err.Error()
	}
	c.streams.addWriter(w, t)
	writeErr := error(nil)
	for seq := int64(0); seq < chunks; seq++ {
		size := streamChunkBytes
		if seq == 0 {
			size = streamHeadBytes
		}
		if _, err := w.Write(streamChunk(seq, size)); err != nil {
			writeErr = err
			break
		}
		t.mu.Lock()
		t.sent++
		t.mu.Unlock()
	}
	closeErr := w.Close()
	t.mu.Lock()
	t.closedOK = writeErr == nil && closeErr == nil
	t.senderDone = true
	sent := t.sent
	t.mu.Unlock()
	if writeErr != nil {
		return fmt.Sprintf("err after %d chunks: %v", sent, writeErr)
	}
	if closeErr != nil {
		return fmt.Sprintf("close err after %d chunks: %v", sent, closeErr)
	}
	return fmt.Sprintf("ok chunks=%d", sent)
}

// streamInvariants are the stream-mux conservation properties, checked
// after every schedule step.
//
//   - credit books: a credited writer never sends past its grants;
//   - integrity: no corrupt, reordered or duplicated delivery, with
//     reliable streams additionally gap-free;
//   - conservation: the target never observes more chunks than the
//     phone sent — and unreliable streams count every receiver-side
//     drop, so delivered + dropped never exceeds sent either.
func streamInvariants() []Invariant {
	return []Invariant{
		{
			Name: "stream-credit-books",
			Check: func(c *Cluster) error {
				_, writers := c.streams.snapshot()
				for _, e := range writers {
					if sent, granted, credited := e.w.FlowStats(); credited && sent > granted {
						return fmt.Errorf("writer sent %d bytes with only %d granted", sent, granted)
					}
				}
				return nil
			},
		},
		{
			Name: "stream-conservation",
			Check: func(c *Cluster) error {
				tallies, _ := c.streams.snapshot()
				for _, t := range tallies {
					t.mu.Lock()
					err := func() error {
						if len(t.violations) > 0 {
							return fmt.Errorf("%s: %s", t.name, t.violations[0])
						}
						if t.rcvd+t.dropped > t.sent {
							return fmt.Errorf("%s: delivered %d + dropped %d > sent %d",
								t.name, t.rcvd, t.dropped, t.sent)
						}
						return nil
					}()
					t.mu.Unlock()
					if err != nil {
						return err
					}
				}
				return nil
			},
		},
	}
}

// checkStreamsFinal is the post-drain tightening: a stream whose writer
// finished cleanly and whose reader saw the clean close must balance
// exactly — reliable streams lose nothing, unreliable streams account
// for every drop. Phones must also hold no residual stream state.
func (c *Cluster) checkStreamsFinal() *Failure {
	tallies, _ := c.streams.snapshot()
	for _, t := range tallies {
		t.mu.Lock()
		closedOK, readerClean := t.closedOK, t.readerClean
		sent, rcvd, dropped := t.sent, t.rcvd, t.dropped
		reliable := t.reliable
		t.mu.Unlock()
		if !closedOK || !readerClean {
			continue // torn by a fault; the step-wise ≤ bounds still held
		}
		if t.tainted() {
			// A lossy window overlapped this stream: frames may have been
			// eaten below the mux, which has no retransmit layer. The
			// step-wise ≤ and ordering bounds still held.
			continue
		}
		if reliable && rcvd != sent {
			return &Failure{
				Step: -1, Invariant: "stream-reliable-lossless",
				Err: fmt.Errorf("%s: clean close but %d/%d chunks delivered", t.name, rcvd, sent),
			}
		}
		if !reliable && rcvd+dropped != sent {
			return &Failure{
				Step: -1, Invariant: "stream-drop-accounting",
				Err: fmt.Errorf("%s: delivered %d + dropped %d != sent %d", t.name, rcvd, dropped, sent),
			}
		}
	}
	for _, p := range c.Phones {
		if n := p.Session.Channel().OpenStreamCount(); n != 0 {
			return &Failure{
				Step: -1, Invariant: "stream-leak",
				Err: fmt.Errorf("%s: %d stream entries after drain", p.Name, n),
			}
		}
	}
	return nil
}
