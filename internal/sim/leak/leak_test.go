package leak

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeTB records Errorf calls and collects cleanups so the tests can
// run the checker's end-of-test logic on demand, against a planted
// leak, without failing the real test.
type fakeTB struct {
	mu       sync.Mutex
	errors   []string
	cleanups []func()
}

func (f *fakeTB) Helper() {}

func (f *fakeTB) Errorf(format string, args ...any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.errors = append(f.errors, fmt.Sprintf(format, args...))
}

func (f *fakeTB) Cleanup(fn func()) {
	f.cleanups = append(f.cleanups, fn)
}

// runCleanups runs registered cleanups in testing's LIFO order.
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func (f *fakeTB) reported() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.errors...)
}

// TestCheckGoroutinesCatchesLeak plants Slack+1 goroutines that outlive
// the fake test and asserts the checker reports them — the regression
// test for the leak detector itself.
func TestCheckGoroutinesCatchesLeak(t *testing.T) {
	ft := &fakeTB{}
	CheckGoroutines(ft)

	stop := make(chan struct{})
	for i := 0; i < Slack+1; i++ {
		go func() { <-stop }()
	}
	ft.runCleanups()
	close(stop) // release the planted goroutines before asserting

	errs := ft.reported()
	if len(errs) == 0 {
		t.Fatal("CheckGoroutines did not report a planted leak of Slack+1 goroutines")
	}
	if !strings.Contains(errs[0], "goroutine leak") {
		t.Errorf("leak report %q does not name the failure", errs[0])
	}
	if !strings.Contains(errs[0], "goroutine ") {
		t.Errorf("leak report does not include stack dumps:\n%s", errs[0])
	}

	// Don't leak the plant into later tests.
	if n, ok := Settle(50, time.Second); !ok {
		t.Logf("planted goroutines slow to exit: %d still running", n)
	}
}

// TestCheckGoroutinesAllowsSettledTest asserts the happy path: a test
// whose transient goroutines exit before cleanup reports nothing.
func TestCheckGoroutinesAllowsSettledTest(t *testing.T) {
	ft := &fakeTB{}
	CheckGoroutines(ft)

	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	ft.runCleanups()

	if errs := ft.reported(); len(errs) != 0 {
		t.Fatalf("false positive from a settled test: %v", errs)
	}
}

// TestSettleReportsCount pins Settle's contract: it returns the last
// observed count and whether the limit was met, without hanging past
// its budget.
func TestSettleReportsCount(t *testing.T) {
	stop := make(chan struct{})
	go func() { <-stop }()
	defer close(stop)

	start := time.Now()
	if _, ok := Settle(0, 50*time.Millisecond); ok {
		t.Fatal("Settle(0) reported success with goroutines running")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Settle overran its budget: took %v", d)
	}

	if n, ok := Settle(1<<20, time.Millisecond); !ok || n <= 0 {
		t.Fatalf("Settle with a huge limit = (%d, %v), want immediate success", n, ok)
	}
}
