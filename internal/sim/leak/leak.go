// Package leak provides goroutine-leak detection for tests. It lives in
// its own leaf package (importing only the standard library) so that the
// remote and core test packages can use it without importing internal/sim
// — which imports remote and core, and would form a cycle.
package leak

import (
	"runtime"
	"time"
)

// TB is the subset of testing.TB the checker needs. Taking an interface
// (rather than *testing.T) lets the leak regression test drive the
// checker with a fake and assert that it reports a planted leak.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// Slack is how many goroutines above the baseline a check tolerates:
// the runtime itself (GC workers, timer goroutine) fluctuates by a few.
const Slack = 3

// CheckGoroutines snapshots the current goroutine count and registers a
// cleanup that fails the test if, by the end of the test, the count has
// not settled back to the baseline (plus Slack). Call it first thing in
// a test that spawns channels, links or sessions.
func CheckGoroutines(t TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		if n, ok := Settle(base+Slack, 2*time.Second); !ok {
			t.Errorf("goroutine leak: %d goroutines, baseline %d (+%d slack)\n%s",
				n, base, Slack, Stacks())
		}
	})
}

// Settle waits for the goroutine count to drop to limit or below,
// yielding the scheduler first and falling back to short wall sleeps
// only if yields are not enough (teardown I/O can take real time). It
// returns the last observed count and whether the limit was reached.
func Settle(limit int, budget time.Duration) (int, bool) {
	n := runtime.NumGoroutine()
	for round := 0; round < 200 && n > limit; round++ {
		runtime.Gosched()
		n = runtime.NumGoroutine()
	}
	deadline := time.Now().Add(budget)
	for n > limit && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n, n <= limit
}

// Stacks returns a bounded dump of all goroutine stacks for the leak
// report.
func Stacks() string {
	buf := make([]byte, 64<<10)
	n := runtime.Stack(buf, true)
	return string(buf[:n])
}
