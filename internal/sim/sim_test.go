package sim

import (
	"errors"
	"flag"
	"fmt"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/render"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// Replay controls. A failing sweep prints its seed; rerun exactly that
// schedule with:
//
//	go test ./internal/sim -run 'TestSim$' -sim.seed=<N> -v
var (
	simSeed = flag.Int64("sim.seed", 0, "replay a single simulation seed (0 = run the sweep)")
	simN    = flag.Int("sim.n", 25, "number of seeds in the sweep")
)

// TestSim is the property runner: every seed generates a different
// fault/operation schedule, and the built-in invariants must hold at
// every step of every seed.
func TestSim(t *testing.T) {
	if *simSeed != 0 {
		res := Run(*simSeed, Options{})
		t.Logf("seed %d trace:\n%s", res.Seed, res.Trace)
		if res.Failure != nil {
			t.Fatalf("seed %d: %s (minimized away %d events)", res.Seed, res.Failure, res.Minimized)
		}
		return
	}
	for seed := int64(1); seed <= int64(*simN); seed++ {
		res := Run(seed, Options{})
		if res.Failure != nil {
			t.Fatalf("seed %d: %s\nreplay: go test ./internal/sim -run 'TestSim$' -sim.seed=%d -v\ntrace (%d events minimized away):\n%s",
				seed, res.Failure, seed, res.Minimized, res.Trace)
		}
	}
}

// TestSimDeterministic reruns one seed and requires byte-identical
// traces: same schedule, same delivery and drop outcomes, same link
// transitions at the same virtual instants.
func TestSimDeterministic(t *testing.T) {
	opts := Options{Events: 14}
	a := Run(7, opts)
	b := Run(7, opts)
	if a.Failure != nil || b.Failure != nil {
		t.Fatalf("runs failed: %v / %v", a.Failure, b.Failure)
	}
	if at, bt := a.Trace.String(), b.Trace.String(); at != bt {
		t.Fatalf("same seed, different traces:\n--- run 1 ---\n%s--- run 2 ---\n%s", at, bt)
	}
	// And a different seed must explore a different schedule.
	c := Run(8, opts)
	if c.Failure != nil {
		t.Fatalf("seed 8 failed: %v", c.Failure)
	}
	if a.Trace.String() == c.Trace.String() {
		t.Fatal("seeds 7 and 8 produced identical traces; seed is not reaching the schedule")
	}
}

// TestSimFailureReplaysDeterministically plants a failing invariant —
// "no phone may ever leave LinkUp" — which the first disruptive fault
// violates. The failure must reproduce at the same step with the same
// trace on every run, and the minimizer must strip the failure down to
// a single load-bearing fault.
func TestSimFailureReplaysDeterministically(t *testing.T) {
	opts := Options{
		Events: 14,
		Extra: []Invariant{{
			Name: "planted-always-up",
			Check: func(c *Cluster) error {
				for _, p := range c.Phones {
					if st := p.Session.Link().State(); st != remote.LinkUp {
						return fmt.Errorf("%s: link %s", p.Name, st)
					}
				}
				return nil
			},
		}},
	}
	a := Run(11, opts)
	b := Run(11, opts)
	if a.Failure == nil || b.Failure == nil {
		t.Fatalf("planted invariant did not fire: %v / %v", a.Failure, b.Failure)
	}
	if a.Failure.Step != b.Failure.Step || a.Failure.Invariant != b.Failure.Invariant {
		t.Fatalf("failure not deterministic: step %d/%q vs step %d/%q",
			a.Failure.Step, a.Failure.Invariant, b.Failure.Step, b.Failure.Invariant)
	}
	if a.Trace.String() != b.Trace.String() {
		t.Fatalf("failing traces differ:\n--- run 1 ---\n%s--- run 2 ---\n%s",
			a.Trace.String(), b.Trace.String())
	}
	if a.Minimized == 0 {
		t.Error("minimizer removed no events; expected irrelevant faults to be stripped")
	}
	faults := 0
	for i, ev := range a.Schedule {
		_ = i
		if ev.isFault() {
			faults++
		}
	}
	if faults-a.Minimized != 1 {
		t.Errorf("minimized run keeps %d faults, want exactly 1 (schedule had %d)", faults-a.Minimized, faults)
	}
}

// TestSimMultiTarget runs one seed against a wider topology to keep
// the round-robin wiring honest.
func TestSimMultiTarget(t *testing.T) {
	res := Run(3, Options{Phones: 3, Targets: 2, Events: 10})
	if res.Failure != nil {
		t.Fatalf("seed 3 (3 phones, 2 targets): %s\n%s", res.Failure, res.Trace)
	}
}

// TestSimSteadyStateOptimizerNeverFlaps runs a faultless cluster with
// a live optimizer on each phone: on the steady WLAN link the RTT sits
// above the pull threshold, so each phone pulls the logic tier exactly
// once, then holds — no pushes, no flaps, placement invariants intact.
func TestSimSteadyStateOptimizerNeverFlaps(t *testing.T) {
	CheckGoroutines(t)
	c, err := NewCluster(17, Options{Phones: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, p := range c.Phones {
		opt, err := p.App().StartOptimizer(core.OptimizerConfig{
			Interval:     25 * time.Millisecond,
			RTTThreshold: 20 * time.Millisecond,
			MinDwell:     100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := c.Do(time.Minute, func() error { opt.Stop(); return nil }); err != nil {
				t.Error(err)
			}
		}()
	}

	// Every phone converges onto the local placement...
	if !c.Eventually(10*time.Second, func() bool {
		for _, p := range c.Phones {
			if local, _ := p.App().DependencyLocal(shop.LogicInterface); !local {
				return false
			}
		}
		return true
	}) {
		t.Fatal("optimizers never pulled the logic tier on the slow steady link")
	}
	// ...and stays there: many more probe rounds change nothing.
	c.Clock.Advance(5 * time.Second)
	for _, p := range c.Phones {
		m := p.Hub.Metrics
		if got := m.Total("alfredo_core_placement_pulls_total"); got != 1 {
			t.Errorf("%s: %d pulls under steady conditions, want exactly 1", p.Name, got)
		}
		if got := m.Total("alfredo_core_placement_pushes_total"); got != 0 {
			t.Errorf("%s: %d pushes under steady conditions, want 0", p.Name, got)
		}
		if got := m.Total("alfredo_core_placement_flaps_total"); got != 0 {
			t.Errorf("%s: %d flaps under steady conditions, want 0", p.Name, got)
		}
		if err := p.App().PlacementConsistent(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// --- Ported chaos scenarios ----------------------------------------
//
// These are the wall-clock scenarios from internal/chaos/chaos_test.go
// re-expressed on the harness: identical fault arcs and assertions,
// but every wait is a virtual-clock Eventually and the whole arc runs
// in microseconds of wall time, deterministically, under -race.

// TestSimShopSurvivesMidSessionDisconnect: a hard disconnect lands
// mid-interaction, the UI degrades, the link redials after the
// blackout, the lease re-establishes, and an invocation issued during
// the outage completes inside the reconnect budget.
func TestSimShopSurvivesMidSessionDisconnect(t *testing.T) {
	CheckGoroutines(t)
	retry := remote.RetryPolicy{
		MaxAttempts:     3,
		BaseDelay:       20 * time.Millisecond,
		ReconnectBudget: 5 * time.Second,
	}
	c, err := NewCluster(42, Options{Phones: 1, Timeout: 2 * time.Second, Retry: retry, UI: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := c.Phones[0]

	// Normal interaction before the fault.
	if err := c.Do(time.Second, func() error {
		return p.App().View.Inject(ui.Event{Control: "categories", Kind: ui.EventSelect, Value: "tables"})
	}); err != nil {
		t.Fatal(err)
	}

	// Blackout the target briefly, then cut the radio link mid-session.
	c.Fabric.Block(p.target, 250*time.Millisecond)
	p.LastConn().Drop()

	if !c.Eventually(2*time.Second, p.App().Degraded) {
		t.Fatal("application never degraded")
	}
	// While degraded, user input bounces off the disabled controls.
	err = p.App().View.Inject(ui.Event{Control: "categories", Kind: ui.EventSelect, Value: "chairs"})
	if !errors.Is(err, render.ErrControlDisabled) {
		t.Errorf("Inject while degraded = %v, want ErrControlDisabled", err)
	}

	// An invocation issued during the outage blocks, then succeeds once
	// the lease is re-established — within the budget, in virtual time.
	start := c.Clock.Elapsed()
	var cats any
	if err := c.Do(retry.ReconnectBudget+time.Second, func() error {
		var err error
		cats, err = p.App().Invoke("Categories")
		return err
	}); err != nil {
		t.Fatalf("Invoke across disconnect: %v", err)
	}
	if d := c.Clock.Elapsed() - start; d > retry.ReconnectBudget {
		t.Errorf("recovery took %v virtual, budget %v", d, retry.ReconnectBudget)
	}
	if list, ok := cats.([]any); !ok || len(list) == 0 {
		t.Errorf("Categories after recovery = %#v", cats)
	}

	if !c.Eventually(2*time.Second, func() bool { return !p.App().Degraded() }) {
		t.Fatal("application never recovered")
	}
	// Controls are live again and the interaction works end to end.
	if err := c.Do(time.Second, func() error {
		return p.App().View.Inject(ui.Event{Control: "categories", Kind: ui.EventSelect, Value: "tables"})
	}); err != nil {
		t.Fatalf("Inject after recovery: %v", err)
	}
	items, _ := p.App().View.Property("products", "items")
	if list, ok := items.([]any); !ok || len(list) != 2 {
		t.Errorf("tables after recovery = %v (ctl err %v)", items, p.App().Controller.LastError())
	}
	// The lease was re-exchanged on the new channel.
	if len(p.Session.Services()) == 0 {
		t.Error("lease empty after recovery")
	}

	c.Close()
	if err := c.LeakCheck(); err != nil {
		t.Error(err)
	}
}

// TestSimPermanentPartitionDegrades keeps the target unreachable past
// the reconnect budget: the link goes terminally down, invocations
// fail fast with ErrDegraded, and the UI stays disabled.
func TestSimPermanentPartitionDegrades(t *testing.T) {
	CheckGoroutines(t)
	retry := remote.RetryPolicy{
		MaxAttempts:     2,
		BaseDelay:       20 * time.Millisecond,
		ReconnectBudget: 300 * time.Millisecond,
	}
	c, err := NewCluster(99, Options{Phones: 1, Timeout: time.Second, Retry: retry, UI: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := c.Phones[0]

	// Permanent partition: every redial is refused.
	c.Fabric.Block(p.target, time.Hour)
	p.LastConn().Drop()

	if !c.Eventually(5*time.Second, func() bool {
		return p.Session.Link().State() == remote.LinkDown
	}) {
		t.Fatal("link never went down")
	}

	start := c.Clock.Elapsed()
	if err := c.Do(3*time.Second, func() error {
		_, err := p.App().Invoke("Categories")
		if !errors.Is(err, core.ErrDegraded) {
			return fmt.Errorf("Invoke on downed link = %v, want ErrDegraded", err)
		}
		return nil
	}); err != nil {
		t.Error(err)
	}
	if d := c.Clock.Elapsed() - start; d > 2*time.Second {
		t.Errorf("degraded Invoke took %v virtual, want fast typed failure", d)
	}
	if err := p.App().View.Inject(ui.Event{Control: "categories", Kind: ui.EventSelect, Value: "tables"}); !errors.Is(err, render.ErrControlDisabled) {
		t.Errorf("Inject on downed link = %v, want ErrControlDisabled", err)
	}
	if !p.App().Degraded() {
		t.Error("application not degraded with link down")
	}
}
