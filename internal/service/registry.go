// Package service implements an OSGi-style service registry: services are
// ordinary Go values published under one or more service interface names
// together with a property map, and consumers look them up by interface
// name and RFC 1960 filter.
//
// The registry is the local communication backbone of the framework
// (paper §2: "Modules typically communicate through services, which are
// ordinary ... classes published under a service interface in a central
// service registry"). The remote layer builds on it by registering proxies
// that are indistinguishable from local services.
package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/alfredo-mw/alfredo/internal/filter"
)

// Standard service property names.
const (
	// PropObjectClass lists the interface names a service is published
	// under. It is maintained by the registry and cannot be overridden.
	PropObjectClass = "objectClass"
	// PropServiceID is the unique, registry-assigned service id (int64).
	PropServiceID = "service.id"
	// PropServiceRanking orders competing providers; higher wins (int).
	PropServiceRanking = "service.ranking"
	// PropServicePID is an optional persistent identifier.
	PropServicePID = "service.pid"
	// PropRemote marks services imported from a remote peer (bool).
	PropRemote = "service.remote"
	// PropRemotePeer names the peer a remote service was imported from.
	PropRemotePeer = "service.remote.peer"
)

// Registry errors.
var (
	ErrNoInterfaces   = errors.New("service: at least one interface name required")
	ErrNilService     = errors.New("service: nil service object")
	ErrUnregistered   = errors.New("service: registration is no longer valid")
	ErrRegistryClosed = errors.New("service: registry closed")
)

// Properties is the property map attached to a registration. Maps are
// copied at the registry boundary; mutating a Properties value after
// passing it to the registry has no effect.
type Properties map[string]any

func (p Properties) clone() Properties {
	c := make(Properties, len(p)+3)
	for k, v := range p {
		c[k] = v
	}
	return c
}

// EventType enumerates service lifecycle events.
type EventType int

// Service event types.
const (
	EventRegistered EventType = iota + 1
	EventModified
	EventUnregistering
)

func (t EventType) String() string {
	switch t {
	case EventRegistered:
		return "REGISTERED"
	case EventModified:
		return "MODIFIED"
	case EventUnregistering:
		return "UNREGISTERING"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Event describes a change to a registered service.
type Event struct {
	Type EventType
	Ref  *Reference
}

// Listener receives service events. Listeners are invoked synchronously
// in registration order, outside of any registry lock; they may call back
// into the registry but must not block for long.
type Listener func(Event)

// Factory may be implemented by registered service objects to provide a
// distinct instance per requesting owner (the OSGi ServiceFactory analog).
type Factory interface {
	GetService(owner string) any
}

// Registry is a thread-safe service registry. The zero value is not
// usable; create instances with NewRegistry.
type Registry struct {
	mu        sync.Mutex
	nextID    int64
	nextTok   int64
	entries   map[int64]*entry
	byIface   map[string]map[int64]*entry
	listeners map[int64]*listenerEntry
	closed    bool
}

type entry struct {
	ref      *Reference
	svc      any
	useCount int
}

type listenerEntry struct {
	fn  Listener
	flt *filter.Filter
	tok int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries:   make(map[int64]*entry),
		byIface:   make(map[string]map[int64]*entry),
		listeners: make(map[int64]*listenerEntry),
	}
}

// Register publishes svc under the given interface names. owner
// identifies the registering party (bundle symbolic name or peer id) and
// is recorded on the reference. The returned Registration controls the
// service's lifecycle.
func (r *Registry) Register(ifaces []string, svc any, props Properties, owner string) (*Registration, error) {
	if len(ifaces) == 0 {
		return nil, ErrNoInterfaces
	}
	if svc == nil {
		return nil, ErrNilService
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrRegistryClosed
	}
	r.nextID++
	id := r.nextID
	p := props.clone()
	ifcopy := make([]string, len(ifaces))
	copy(ifcopy, ifaces)
	p[PropObjectClass] = ifcopy
	p[PropServiceID] = id
	ref := &Reference{id: id, ifaces: ifcopy, owner: owner, props: p, reg: r}
	e := &entry{ref: ref, svc: svc}
	r.entries[id] = e
	for _, i := range ifcopy {
		m := r.byIface[i]
		if m == nil {
			m = make(map[int64]*entry)
			r.byIface[i] = m
		}
		m[id] = e
	}
	ls := r.snapshotListenersLocked()
	r.mu.Unlock()

	fire(ls, Event{Type: EventRegistered, Ref: ref})
	return &Registration{ref: ref}, nil
}

// Get returns the service object for ref, incrementing its use count.
// It returns false if the reference is stale. owner is passed to a
// Factory service if the object implements it.
func (r *Registry) Get(ref *Reference, owner string) (any, bool) {
	r.mu.Lock()
	e, ok := r.entries[ref.id]
	if !ok {
		r.mu.Unlock()
		return nil, false
	}
	e.useCount++
	svc := e.svc
	r.mu.Unlock()

	if f, isFactory := svc.(Factory); isFactory {
		return f.GetService(owner), true
	}
	return svc, true
}

// Unget decrements the use count taken by Get. It is safe to call with a
// stale reference.
func (r *Registry) Unget(ref *Reference) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[ref.id]; ok && e.useCount > 0 {
		e.useCount--
	}
}

// UseCount reports the current use count of ref (0 for stale references).
func (r *Registry) UseCount(ref *Reference) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[ref.id]; ok {
		return e.useCount
	}
	return 0
}

// FindAll returns the references of all services registered under iface
// (any interface if iface is empty) whose properties match flt (all if
// flt is nil), ordered by descending ranking then ascending service id.
func (r *Registry) FindAll(iface string, flt *filter.Filter) []*Reference {
	r.mu.Lock()
	var refs []*Reference
	scan := func(e *entry) {
		if flt == nil || flt.Matches(e.ref.props) {
			refs = append(refs, e.ref)
		}
	}
	if iface == "" {
		for _, e := range r.entries {
			scan(e)
		}
	} else {
		for _, e := range r.byIface[iface] {
			scan(e)
		}
	}
	r.mu.Unlock()

	sort.Slice(refs, func(i, j int) bool {
		ri, rj := refs[i].Ranking(), refs[j].Ranking()
		if ri != rj {
			return ri > rj
		}
		return refs[i].id < refs[j].id
	})
	return refs
}

// Find returns the best reference for iface matching flt, or nil.
func (r *Registry) Find(iface string, flt *filter.Filter) *Reference {
	refs := r.FindAll(iface, flt)
	if len(refs) == 0 {
		return nil
	}
	return refs[0]
}

// AddListener subscribes fn to service events whose reference properties
// match flt (all events if flt is nil). The returned token removes the
// subscription via RemoveListener.
func (r *Registry) AddListener(fn Listener, flt *filter.Filter) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextTok++
	tok := r.nextTok
	r.listeners[tok] = &listenerEntry{fn: fn, flt: flt, tok: tok}
	return tok
}

// RemoveListener cancels a subscription. Unknown tokens are ignored.
func (r *Registry) RemoveListener(tok int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.listeners, tok)
}

// UnregisterOwned unregisters every service registered by owner. It is
// used by the module layer when a bundle stops.
func (r *Registry) UnregisterOwned(owner string) int {
	r.mu.Lock()
	var victims []*Reference
	for _, e := range r.entries {
		if e.ref.owner == owner {
			victims = append(victims, e.ref)
		}
	}
	r.mu.Unlock()

	for _, ref := range victims {
		r.unregister(ref)
	}
	return len(victims)
}

// Size reports the number of currently registered services.
func (r *Registry) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Close unregisters all services (firing UNREGISTERING events) and
// rejects further registrations.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	var victims []*Reference
	for _, e := range r.entries {
		victims = append(victims, e.ref)
	}
	r.mu.Unlock()

	for _, ref := range victims {
		r.unregister(ref)
	}
}

func (r *Registry) unregister(ref *Reference) bool {
	r.mu.Lock()
	e, ok := r.entries[ref.id]
	if !ok {
		r.mu.Unlock()
		return false
	}
	ls := r.snapshotListenersLocked()
	r.mu.Unlock()

	// UNREGISTERING fires while the service is still resolvable so that
	// listeners can perform an orderly release (OSGi semantics).
	fire(ls, Event{Type: EventUnregistering, Ref: ref})

	r.mu.Lock()
	delete(r.entries, e.ref.id)
	for _, i := range e.ref.ifaces {
		delete(r.byIface[i], e.ref.id)
		if len(r.byIface[i]) == 0 {
			delete(r.byIface, i)
		}
	}
	r.mu.Unlock()
	return true
}

func (r *Registry) setProperties(ref *Reference, props Properties) error {
	r.mu.Lock()
	_, ok := r.entries[ref.id]
	if !ok {
		r.mu.Unlock()
		return ErrUnregistered
	}
	p := props.clone()
	p[PropObjectClass] = ref.ifaces
	p[PropServiceID] = ref.id
	ref.setProps(p)
	ls := r.snapshotListenersLocked()
	r.mu.Unlock()

	fire(ls, Event{Type: EventModified, Ref: ref})
	return nil
}

func (r *Registry) snapshotListenersLocked() []*listenerEntry {
	ls := make([]*listenerEntry, 0, len(r.listeners))
	for _, l := range r.listeners {
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].tok < ls[j].tok })
	return ls
}

func fire(ls []*listenerEntry, ev Event) {
	for _, l := range ls {
		if l.flt == nil || l.flt.Matches(ev.Ref.Properties()) {
			l.fn(ev)
		}
	}
}

// Reference is a stable handle to a registered service. References are
// safe for concurrent use and remain valid (but stale) after the service
// is unregistered.
type Reference struct {
	id     int64
	ifaces []string
	owner  string
	reg    *Registry

	mu    sync.RWMutex
	props Properties
}

// ID returns the registry-assigned service id.
func (r *Reference) ID() int64 { return r.id }

// Interfaces returns the interface names the service is published under.
func (r *Reference) Interfaces() []string {
	out := make([]string, len(r.ifaces))
	copy(out, r.ifaces)
	return out
}

// Owner returns the identifier of the registering party.
func (r *Reference) Owner() string { return r.owner }

// Property returns a single service property.
func (r *Reference) Property(key string) (any, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.props[key]
	return v, ok
}

// Properties returns a copy of the full property map.
func (r *Reference) Properties() Properties {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.props.clone()
}

// Ranking returns the service.ranking property (0 when absent).
func (r *Reference) Ranking() int {
	v, ok := r.Property(PropServiceRanking)
	if !ok {
		return 0
	}
	switch n := v.(type) {
	case int:
		return n
	case int64:
		return int(n)
	default:
		return 0
	}
}

// Alive reports whether the service is still registered.
func (r *Reference) Alive() bool {
	r.reg.mu.Lock()
	defer r.reg.mu.Unlock()
	_, ok := r.reg.entries[r.id]
	return ok
}

func (r *Reference) setProps(p Properties) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.props = p
}

// String implements fmt.Stringer for diagnostics.
func (r *Reference) String() string {
	return fmt.Sprintf("service{id=%d, ifaces=%v, owner=%s}", r.id, r.ifaces, r.owner)
}

// Registration is the publisher-side handle to a registered service.
type Registration struct {
	mu  sync.Mutex
	ref *Reference
}

// Reference returns the reference for this registration, or nil after
// Unregister.
func (g *Registration) Reference() *Reference {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ref
}

// SetProperties replaces the service properties (objectClass and
// service.id are preserved) and fires a MODIFIED event.
func (g *Registration) SetProperties(props Properties) error {
	g.mu.Lock()
	ref := g.ref
	g.mu.Unlock()
	if ref == nil {
		return ErrUnregistered
	}
	return ref.reg.setProperties(ref, props)
}

// Unregister removes the service from the registry, firing an
// UNREGISTERING event first. It is idempotent.
func (g *Registration) Unregister() error {
	g.mu.Lock()
	ref := g.ref
	g.ref = nil
	g.mu.Unlock()
	if ref == nil {
		return ErrUnregistered
	}
	if !ref.reg.unregister(ref) {
		return ErrUnregistered
	}
	return nil
}
