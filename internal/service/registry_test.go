package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"github.com/alfredo-mw/alfredo/internal/filter"
)

type echoService struct{ name string }

func TestRegisterAndFind(t *testing.T) {
	reg := NewRegistry()
	svc := &echoService{name: "a"}
	g, err := reg.Register([]string{"test.Echo"}, svc, Properties{"lang": "en"}, "bundle.a")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	ref := reg.Find("test.Echo", nil)
	if ref == nil {
		t.Fatal("Find returned nil")
	}
	if ref.ID() != g.Reference().ID() {
		t.Errorf("reference mismatch: %d vs %d", ref.ID(), g.Reference().ID())
	}
	got, ok := reg.Get(ref, "consumer")
	if !ok || got != svc {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if uc := reg.UseCount(ref); uc != 1 {
		t.Errorf("UseCount = %d, want 1", uc)
	}
	reg.Unget(ref)
	if uc := reg.UseCount(ref); uc != 0 {
		t.Errorf("UseCount after Unget = %d, want 0", uc)
	}
}

func TestRegisterValidation(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Register(nil, &echoService{}, nil, "o"); !errors.Is(err, ErrNoInterfaces) {
		t.Errorf("want ErrNoInterfaces, got %v", err)
	}
	if _, err := reg.Register([]string{"x"}, nil, nil, "o"); !errors.Is(err, ErrNilService) {
		t.Errorf("want ErrNilService, got %v", err)
	}
}

func TestObjectClassAndIDProperties(t *testing.T) {
	reg := NewRegistry()
	g, err := reg.Register([]string{"a.A", "b.B"}, &echoService{}, Properties{
		PropObjectClass: "spoofed",
		PropServiceID:   int64(999),
	}, "o")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	ref := g.Reference()
	oc, _ := ref.Property(PropObjectClass)
	ifaces, ok := oc.([]string)
	if !ok || len(ifaces) != 2 || ifaces[0] != "a.A" {
		t.Errorf("objectClass not protected: %v", oc)
	}
	id, _ := ref.Property(PropServiceID)
	if id != ref.ID() {
		t.Errorf("service.id not protected: %v vs %d", id, ref.ID())
	}
}

func TestRankingOrder(t *testing.T) {
	reg := NewRegistry()
	low, _ := reg.Register([]string{"x.X"}, &echoService{name: "low"}, Properties{PropServiceRanking: 1}, "o")
	high, _ := reg.Register([]string{"x.X"}, &echoService{name: "high"}, Properties{PropServiceRanking: 10}, "o")
	mid, _ := reg.Register([]string{"x.X"}, &echoService{name: "mid"}, Properties{PropServiceRanking: 5}, "o")

	refs := reg.FindAll("x.X", nil)
	if len(refs) != 3 {
		t.Fatalf("FindAll = %d entries, want 3", len(refs))
	}
	want := []int64{high.Reference().ID(), mid.Reference().ID(), low.Reference().ID()}
	for i, ref := range refs {
		if ref.ID() != want[i] {
			t.Errorf("order[%d] = %d, want %d", i, ref.ID(), want[i])
		}
	}
	// Equal ranking ties break by ascending id (registration order).
	reg2 := NewRegistry()
	a, _ := reg2.Register([]string{"y"}, &echoService{}, nil, "o")
	b, _ := reg2.Register([]string{"y"}, &echoService{}, nil, "o")
	refs2 := reg2.FindAll("y", nil)
	if refs2[0].ID() != a.Reference().ID() || refs2[1].ID() != b.Reference().ID() {
		t.Error("tie break by id failed")
	}
}

func TestFindWithFilter(t *testing.T) {
	reg := NewRegistry()
	_, _ = reg.Register([]string{"dev.Input"}, &echoService{}, Properties{"kind": "keyboard"}, "o")
	_, _ = reg.Register([]string{"dev.Input"}, &echoService{}, Properties{"kind": "joystick"}, "o")

	f := filter.MustParse("(kind=joystick)")
	refs := reg.FindAll("dev.Input", f)
	if len(refs) != 1 {
		t.Fatalf("filtered FindAll = %d entries, want 1", len(refs))
	}
	if k, _ := refs[0].Property("kind"); k != "joystick" {
		t.Errorf("wrong match: %v", k)
	}
	if ref := reg.Find("dev.Input", filter.MustParse("(kind=mouse)")); ref != nil {
		t.Errorf("Find with non-matching filter = %v, want nil", ref)
	}
}

func TestFindAllEmptyInterface(t *testing.T) {
	reg := NewRegistry()
	_, _ = reg.Register([]string{"a"}, &echoService{}, nil, "o")
	_, _ = reg.Register([]string{"b"}, &echoService{}, nil, "o")
	if n := len(reg.FindAll("", nil)); n != 2 {
		t.Errorf("FindAll(\"\") = %d, want 2", n)
	}
}

func TestUnregister(t *testing.T) {
	reg := NewRegistry()
	g, _ := reg.Register([]string{"x"}, &echoService{}, nil, "o")
	ref := g.Reference()
	if !ref.Alive() {
		t.Fatal("service should be alive")
	}
	if err := g.Unregister(); err != nil {
		t.Fatalf("Unregister: %v", err)
	}
	if ref.Alive() {
		t.Error("service should be gone")
	}
	if reg.Find("x", nil) != nil {
		t.Error("Find should return nil after unregister")
	}
	if err := g.Unregister(); !errors.Is(err, ErrUnregistered) {
		t.Errorf("second Unregister = %v, want ErrUnregistered", err)
	}
	if _, ok := reg.Get(ref, "o"); ok {
		t.Error("Get on stale reference should fail")
	}
}

func TestUnregisterOwned(t *testing.T) {
	reg := NewRegistry()
	_, _ = reg.Register([]string{"x"}, &echoService{}, nil, "bundle.a")
	_, _ = reg.Register([]string{"y"}, &echoService{}, nil, "bundle.a")
	_, _ = reg.Register([]string{"z"}, &echoService{}, nil, "bundle.b")
	if n := reg.UnregisterOwned("bundle.a"); n != 2 {
		t.Errorf("UnregisterOwned = %d, want 2", n)
	}
	if reg.Size() != 1 {
		t.Errorf("Size = %d, want 1", reg.Size())
	}
}

func TestListenerEvents(t *testing.T) {
	reg := NewRegistry()
	var events []Event
	tok := reg.AddListener(func(ev Event) { events = append(events, ev) }, nil)

	g, _ := reg.Register([]string{"x"}, &echoService{}, nil, "o")
	_ = g.SetProperties(Properties{"v": 2})
	_ = g.Unregister()

	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	wantTypes := []EventType{EventRegistered, EventModified, EventUnregistering}
	for i, ev := range events {
		if ev.Type != wantTypes[i] {
			t.Errorf("event[%d] = %v, want %v", i, ev.Type, wantTypes[i])
		}
	}
	// UNREGISTERING must fire while the service is still resolvable.
	reg.RemoveListener(tok)
	g2, _ := reg.Register([]string{"y"}, &echoService{}, nil, "o")
	aliveAtUnregister := false
	reg.AddListener(func(ev Event) {
		if ev.Type == EventUnregistering {
			aliveAtUnregister = ev.Ref.Alive()
		}
	}, nil)
	_ = g2.Unregister()
	if !aliveAtUnregister {
		t.Error("service was not resolvable during UNREGISTERING")
	}
}

func TestListenerFilter(t *testing.T) {
	reg := NewRegistry()
	var hits int
	reg.AddListener(func(ev Event) { hits++ }, filter.MustParse("(objectClass=only.This)"))
	_, _ = reg.Register([]string{"other.Thing"}, &echoService{}, nil, "o")
	_, _ = reg.Register([]string{"only.This"}, &echoService{}, nil, "o")
	if hits != 1 {
		t.Errorf("filtered listener hits = %d, want 1", hits)
	}
}

func TestSetPropertiesPreservesIdentity(t *testing.T) {
	reg := NewRegistry()
	g, _ := reg.Register([]string{"x"}, &echoService{}, Properties{"a": 1}, "o")
	if err := g.SetProperties(Properties{"b": 2}); err != nil {
		t.Fatalf("SetProperties: %v", err)
	}
	ref := g.Reference()
	if _, ok := ref.Property("a"); ok {
		t.Error("old property survived SetProperties")
	}
	if v, _ := ref.Property("b"); v != 2 {
		t.Error("new property missing")
	}
	if v, _ := ref.Property(PropServiceID); v != ref.ID() {
		t.Error("service.id lost")
	}
}

type perOwnerFactory struct{ mu sync.Mutex }

func (f *perOwnerFactory) GetService(owner string) any {
	return "instance-for-" + owner
}

func TestServiceFactory(t *testing.T) {
	reg := NewRegistry()
	g, _ := reg.Register([]string{"f"}, &perOwnerFactory{}, nil, "o")
	a, _ := reg.Get(g.Reference(), "alice")
	b, _ := reg.Get(g.Reference(), "bob")
	if a != "instance-for-alice" || b != "instance-for-bob" {
		t.Errorf("factory dispensing wrong instances: %v, %v", a, b)
	}
}

func TestRegistryClose(t *testing.T) {
	reg := NewRegistry()
	_, _ = reg.Register([]string{"x"}, &echoService{}, nil, "o")
	reg.Close()
	if reg.Size() != 0 {
		t.Errorf("Size after Close = %d", reg.Size())
	}
	if _, err := reg.Register([]string{"y"}, &echoService{}, nil, "o"); !errors.Is(err, ErrRegistryClosed) {
		t.Errorf("Register after Close = %v, want ErrRegistryClosed", err)
	}
	reg.Close() // idempotent
}

func TestConcurrentRegisterFind(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			g, err := reg.Register([]string{"conc.Svc"}, &echoService{}, Properties{"i": i}, "o")
			if err != nil {
				t.Errorf("Register: %v", err)
				return
			}
			if i%2 == 0 {
				_ = g.Unregister()
			}
		}(i)
		go func() {
			defer wg.Done()
			refs := reg.FindAll("conc.Svc", nil)
			for _, ref := range refs {
				if svc, ok := reg.Get(ref, "c"); ok && svc != nil {
					reg.Unget(ref)
				}
			}
		}()
	}
	wg.Wait()
	if got := len(reg.FindAll("conc.Svc", nil)); got != n/2 {
		t.Errorf("surviving services = %d, want %d", got, n/2)
	}
}

func TestPropertyRegisterFindAllCount(t *testing.T) {
	// For any small k, registering k services under one interface yields
	// exactly k references, ranked ids strictly increasing on ties.
	prop := func(k uint8) bool {
		n := int(k%16) + 1
		reg := NewRegistry()
		for i := 0; i < n; i++ {
			if _, err := reg.Register([]string{"p.P"}, &echoService{}, nil, "o"); err != nil {
				return false
			}
		}
		refs := reg.FindAll("p.P", nil)
		if len(refs) != n {
			return false
		}
		for i := 1; i < len(refs); i++ {
			if refs[i-1].ID() >= refs[i].ID() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyUseCountBalance(t *testing.T) {
	// Any interleaving of k Gets and k Ungets leaves the use count at 0.
	prop := func(k uint8) bool {
		n := int(k % 20)
		reg := NewRegistry()
		g, err := reg.Register([]string{"u"}, &echoService{}, nil, "o")
		if err != nil {
			return false
		}
		ref := g.Reference()
		for i := 0; i < n; i++ {
			if _, ok := reg.Get(ref, "c"); !ok {
				return false
			}
		}
		for i := 0; i < n; i++ {
			reg.Unget(ref)
		}
		return reg.UseCount(ref) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func ExampleRegistry() {
	reg := NewRegistry()
	g, _ := reg.Register([]string{"example.Greeter"}, &echoService{name: "hello"},
		Properties{"lang": "en"}, "example.bundle")
	ref := reg.Find("example.Greeter", filter.MustParse("(lang=en)"))
	svc, _ := reg.Get(ref, "consumer")
	fmt.Println(svc.(*echoService).name)
	reg.Unget(ref)
	_ = g.Unregister()
	// Output: hello
}
