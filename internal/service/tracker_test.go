package service

import (
	"testing"

	"github.com/alfredo-mw/alfredo/internal/filter"
)

func TestTrackerSeesPreexisting(t *testing.T) {
	reg := NewRegistry()
	_, _ = reg.Register([]string{"tr.Svc"}, &echoService{name: "pre"}, nil, "o")

	var added []string
	tr := NewTracker(reg, "tr.Svc", nil, "consumer", TrackerCallbacks{
		Adding: func(ref *Reference, svc any) bool {
			added = append(added, svc.(*echoService).name)
			return true
		},
	})
	tr.Open()
	defer tr.Close()

	if len(added) != 1 || added[0] != "pre" {
		t.Errorf("added = %v, want [pre]", added)
	}
	if tr.Count() != 1 {
		t.Errorf("Count = %d, want 1", tr.Count())
	}
}

func TestTrackerFollowsDynamics(t *testing.T) {
	reg := NewRegistry()
	var removed int
	tr := NewTracker(reg, "tr.Svc", nil, "c", TrackerCallbacks{
		Removed: func(ref *Reference, svc any) { removed++ },
	})
	tr.Open()
	defer tr.Close()

	g1, _ := reg.Register([]string{"tr.Svc"}, &echoService{name: "a"}, nil, "o")
	g2, _ := reg.Register([]string{"tr.Svc"}, &echoService{name: "b"}, nil, "o")
	_, _ = reg.Register([]string{"other"}, &echoService{name: "x"}, nil, "o")

	if tr.Count() != 2 {
		t.Fatalf("Count = %d, want 2", tr.Count())
	}
	_ = g1.Unregister()
	if tr.Count() != 1 {
		t.Errorf("Count after unregister = %d, want 1", tr.Count())
	}
	if removed != 1 {
		t.Errorf("removed = %d, want 1", removed)
	}
	svc := tr.Service()
	if svc == nil || svc.(*echoService).name != "b" {
		t.Errorf("Service = %v, want b", svc)
	}
	_ = g2
}

func TestTrackerFilterTransitions(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracker(reg, "tr.Svc", filter.MustParse("(enabled=true)"), "c", TrackerCallbacks{})
	tr.Open()
	defer tr.Close()

	g, _ := reg.Register([]string{"tr.Svc"}, &echoService{}, Properties{"enabled": false}, "o")
	if tr.Count() != 0 {
		t.Fatalf("disabled service tracked")
	}
	// Property change brings it into the tracked set...
	_ = g.SetProperties(Properties{"enabled": true})
	if tr.Count() != 1 {
		t.Fatalf("Count after enable = %d, want 1", tr.Count())
	}
	// ...and back out.
	_ = g.SetProperties(Properties{"enabled": false})
	if tr.Count() != 0 {
		t.Fatalf("Count after disable = %d, want 0", tr.Count())
	}
}

func TestTrackerModifiedCallback(t *testing.T) {
	reg := NewRegistry()
	var modified int
	tr := NewTracker(reg, "tr.Svc", nil, "c", TrackerCallbacks{
		Modified: func(ref *Reference, svc any) { modified++ },
	})
	tr.Open()
	defer tr.Close()
	g, _ := reg.Register([]string{"tr.Svc"}, &echoService{}, nil, "o")
	_ = g.SetProperties(Properties{"v": 1})
	_ = g.SetProperties(Properties{"v": 2})
	if modified != 2 {
		t.Errorf("modified = %d, want 2", modified)
	}
}

func TestTrackerAddingVeto(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracker(reg, "tr.Svc", nil, "c", TrackerCallbacks{
		Adding: func(ref *Reference, svc any) bool { return false },
	})
	tr.Open()
	defer tr.Close()
	g, _ := reg.Register([]string{"tr.Svc"}, &echoService{}, nil, "o")
	if tr.Count() != 0 {
		t.Errorf("vetoed service tracked")
	}
	// Veto must not leak a use count.
	if uc := reg.UseCount(g.Reference()); uc != 0 {
		t.Errorf("use count leaked: %d", uc)
	}
}

func TestTrackerCloseReleasesUseCounts(t *testing.T) {
	reg := NewRegistry()
	g, _ := reg.Register([]string{"tr.Svc"}, &echoService{}, nil, "o")
	tr := NewTracker(reg, "tr.Svc", nil, "c", TrackerCallbacks{})
	tr.Open()
	if uc := reg.UseCount(g.Reference()); uc != 1 {
		t.Fatalf("use count = %d, want 1", uc)
	}
	tr.Close()
	if uc := reg.UseCount(g.Reference()); uc != 0 {
		t.Errorf("use count after Close = %d, want 0", uc)
	}
	if tr.Count() != 0 {
		t.Errorf("Count after Close = %d", tr.Count())
	}
	tr.Close() // idempotent
}

func TestTrackerReopen(t *testing.T) {
	reg := NewRegistry()
	_, _ = reg.Register([]string{"tr.Svc"}, &echoService{}, nil, "o")
	tr := NewTracker(reg, "tr.Svc", nil, "c", TrackerCallbacks{})
	tr.Open()
	tr.Close()
	tr.Open()
	defer tr.Close()
	if tr.Count() != 1 {
		t.Errorf("Count after reopen = %d, want 1", tr.Count())
	}
}
