package service

import (
	"sync"

	"github.com/alfredo-mw/alfredo/internal/filter"
)

// TrackerCallbacks customize a Tracker. All callbacks are optional and
// are invoked synchronously from the registry's event dispatch.
type TrackerCallbacks struct {
	// Adding is called when a matching service appears. Returning false
	// rejects the service (it will not be tracked).
	Adding func(ref *Reference, svc any) bool
	// Modified is called when a tracked service's properties change.
	Modified func(ref *Reference, svc any)
	// Removed is called when a tracked service goes away.
	Removed func(ref *Reference, svc any)
}

// Tracker follows the set of services registered under an interface name
// and matching an optional filter, the OSGi ServiceTracker analog. It
// shields consumers from service dynamism: the tracked set is kept
// current as services come and go.
type Tracker struct {
	reg   *Registry
	iface string
	flt   *filter.Filter
	cbs   TrackerCallbacks
	owner string

	mu      sync.Mutex
	tracked map[int64]any
	tok     int64
	open    bool
}

// NewTracker creates a tracker for services published under iface and
// matching flt (nil tracks all). owner is used when getting service
// objects from the registry.
func NewTracker(reg *Registry, iface string, flt *filter.Filter, owner string, cbs TrackerCallbacks) *Tracker {
	return &Tracker{
		reg:     reg,
		iface:   iface,
		flt:     flt,
		cbs:     cbs,
		owner:   owner,
		tracked: make(map[int64]any),
	}
}

// Open starts tracking: existing matching services are added and a
// listener is installed for subsequent changes. Open is idempotent.
func (t *Tracker) Open() {
	t.mu.Lock()
	if t.open {
		t.mu.Unlock()
		return
	}
	t.open = true
	t.mu.Unlock()

	// Install the listener first so that registrations racing with the
	// initial scan are not lost; duplicates are suppressed in add().
	t.tok = t.reg.AddListener(t.onEvent, nil)
	for _, ref := range t.reg.FindAll(t.iface, t.flt) {
		t.add(ref)
	}
}

// Close stops tracking and removes all tracked services (invoking the
// Removed callback for each). Close is idempotent.
func (t *Tracker) Close() {
	t.mu.Lock()
	if !t.open {
		t.mu.Unlock()
		return
	}
	t.open = false
	tok := t.tok
	t.mu.Unlock()

	t.reg.RemoveListener(tok)

	t.mu.Lock()
	victims := make(map[int64]any, len(t.tracked))
	for id, svc := range t.tracked {
		victims[id] = svc
	}
	t.tracked = make(map[int64]any)
	t.mu.Unlock()

	if t.cbs.Removed != nil {
		for id, svc := range victims {
			ref := &Reference{id: id, reg: t.reg}
			t.cbs.Removed(ref, svc)
		}
	}
	// Balance the Get performed in add.
	for id := range victims {
		t.reg.Unget(&Reference{id: id, reg: t.reg})
	}
}

// Count returns the number of currently tracked services.
func (t *Tracker) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.tracked)
}

// Service returns an arbitrary tracked service object (the registry's
// best match), or nil when none is tracked.
func (t *Tracker) Service() any {
	ref := t.reg.Find(t.iface, t.flt)
	if ref == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tracked[ref.ID()]
}

// Services returns all tracked service objects in unspecified order.
func (t *Tracker) Services() []any {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]any, 0, len(t.tracked))
	for _, svc := range t.tracked {
		out = append(out, svc)
	}
	return out
}

func (t *Tracker) matches(ref *Reference) bool {
	if t.iface != "" {
		found := false
		for _, i := range ref.Interfaces() {
			if i == t.iface {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return t.flt == nil || t.flt.Matches(ref.Properties())
}

func (t *Tracker) onEvent(ev Event) {
	switch ev.Type {
	case EventRegistered:
		if t.matches(ev.Ref) {
			t.add(ev.Ref)
		}
	case EventModified:
		t.mu.Lock()
		_, wasTracked := t.tracked[ev.Ref.ID()]
		t.mu.Unlock()
		nowMatches := t.matches(ev.Ref)
		switch {
		case wasTracked && !nowMatches:
			t.remove(ev.Ref)
		case !wasTracked && nowMatches:
			t.add(ev.Ref)
		case wasTracked && nowMatches:
			if t.cbs.Modified != nil {
				t.mu.Lock()
				svc := t.tracked[ev.Ref.ID()]
				t.mu.Unlock()
				t.cbs.Modified(ev.Ref, svc)
			}
		}
	case EventUnregistering:
		t.mu.Lock()
		_, wasTracked := t.tracked[ev.Ref.ID()]
		t.mu.Unlock()
		if wasTracked {
			t.remove(ev.Ref)
		}
	}
}

func (t *Tracker) add(ref *Reference) {
	t.mu.Lock()
	if !t.open {
		t.mu.Unlock()
		return
	}
	if _, dup := t.tracked[ref.ID()]; dup {
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()

	svc, ok := t.reg.Get(ref, t.owner)
	if !ok {
		return
	}
	if t.cbs.Adding != nil && !t.cbs.Adding(ref, svc) {
		t.reg.Unget(ref)
		return
	}

	t.mu.Lock()
	if _, dup := t.tracked[ref.ID()]; dup || !t.open {
		t.mu.Unlock()
		t.reg.Unget(ref)
		return
	}
	t.tracked[ref.ID()] = svc
	t.mu.Unlock()
}

func (t *Tracker) remove(ref *Reference) {
	t.mu.Lock()
	svc, ok := t.tracked[ref.ID()]
	if ok {
		delete(t.tracked, ref.ID())
	}
	t.mu.Unlock()
	if !ok {
		return
	}
	if t.cbs.Removed != nil {
		t.cbs.Removed(ref, svc)
	}
	t.reg.Unget(ref)
}
