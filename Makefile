# AlfredO (Go) — common tasks. Everything is stdlib-only; no network
# access or external tools required beyond the Go toolchain.

GO ?= go

.PHONY: all build test race cover bench experiments throughput acquire-bench scale-bench obs-bench stream-bench placement fuzz fmt vet chaos sim obs check clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# testing.B entry points (one per paper table/figure + micro-benches).
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Regenerate the paper's full evaluation with side-by-side numbers.
experiments:
	$(GO) run ./cmd/alfredo-bench -full

# Invoke hot-path throughput sweep: ops/sec vs concurrent callers,
# sync vs pipelined, pooled encoder vs seed-ablation dispatch.
throughput:
	$(GO) run ./cmd/alfredo-bench -exp throughput

# Acquire data-plane smoke: a tiny cold/warm/delta cycle on the virtual
# clock asserting warm re-acquisition moves < 10% of the cold bytes,
# then the full sweep table (bundle size x loss rate).
acquire-bench:
	$(GO) test -run TestAcquireBenchSmoke -count=1 ./internal/bench/
	$(GO) run ./cmd/alfredo-bench -exp acquire

# Massive-multitenancy gate: the 10k-session sim-cluster suite (with
# the per-session memory budget check), then the serve-side scale sweep
# with p50/p99 invoke latency and bytes/session per point. Add -full to
# the bench for the 50k/100k points (plan ~4 GB RAM).
scale-bench:
	$(GO) test -run 'TestScale' -count=1 ./internal/sim/
	$(GO) run ./cmd/alfredo-bench -exp scale

# Telemetry overhead gate: with the full metric stack enabled
# (counters, windowed histograms, exemplars, sampled traces) the
# pipelined invoke path must stay within 5% of its disabled-telemetry
# throughput, plus the zero-allocation proof for the disabled path.
obs-bench:
	$(GO) test -run TestObsOverheadGate -count=1 -v ./internal/bench/
	$(GO) test -bench 'BenchmarkNopInvokeTelemetry' -benchmem -run '^$$' ./internal/obs/

# Stream mux gate: head-of-line protection (invoke p99 under a
# saturating bulk stream), broadcast fan-out p99 at 1k subscribers vs
# the 1-sub baseline with encode-once accounting, and zero reliable
# loss across injected partitions; then the wall-clock sweep behind
# `-exp stream` with its BENCH_stream.json artifact.
stream-bench:
	$(GO) test -run 'TestStreamHOLGate|TestStreamFanoutGate|TestStreamFaultGate' -count=1 -v ./internal/bench/
	$(GO) test -run 'TestStream|TestBroadcaster' -count=1 ./internal/remote/
	$(GO) run ./cmd/alfredo-bench -exp stream -json .

# Live re-placement gate: the deterministic sweep with pull/push/
# dep-invoke events interleaved with faults (exactly-once dispatch,
# placement consistency, zero steady-state flaps), the core cutover
# and optimizer regression tests, then the wall-clock degrade/recover
# sweep behind `-exp placement`.
placement:
	$(GO) test -run 'TestSim|TestPlacement|TestPull|TestPush|TestCutover|TestOptimizer|TestRelease' -count=1 ./internal/sim/ ./internal/core/ ./internal/bench/
	$(GO) run ./cmd/alfredo-bench -exp placement

# Short fuzz pass over every untrusted-input parser.
fuzz:
	$(GO) test -fuzz=FuzzWireDecode -fuzztime=15s -run '^$$' .
	$(GO) test -fuzz=FuzzFilterParse -fuzztime=15s -run '^$$' .
	$(GO) test -fuzz=FuzzExprParse -fuzztime=15s -run '^$$' .
	$(GO) test -fuzz=FuzzDescriptorParse -fuzztime=15s -run '^$$' .

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# End-to-end fault-injection suite: sessions driven through scripted
# disconnects, partitions, loss and corruption, always under -race.
chaos:
	$(GO) test -race ./internal/chaos/ ./internal/netsim/ ./internal/remote/

# Deterministic simulation sweep (DESIGN.md §9): 500 seeded
# whole-cluster runs on the virtual clock with invariants checked after
# every event, then the harness itself under -race. A failing seed
# prints a minimized trace; replay with:
#   go test -run TestSim -v ./internal/sim/ -args -sim.seed=N
sim:
	$(GO) test -run TestSim ./internal/sim/ -args -sim.n=500
	$(GO) test -race ./internal/sim/...

# Telemetry demo: drive one instrumented session (partition + drop)
# and dump the metrics snapshot plus the slowest recorded trace, then
# prove the disabled-telemetry path allocates nothing.
obs:
	$(GO) run ./cmd/alfredo-bench -exp obs
	$(GO) test -bench 'BenchmarkNopInvokeTelemetry' -benchmem -run '^$$' ./internal/obs/

# The full pre-merge gate: compile, vet, and the whole tree under -race.
check: build vet
	$(GO) test -race ./...

clean:
	$(GO) clean -testcache
