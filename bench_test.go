// Package alfredo_test hosts the testing.B entry points that regenerate
// the paper's evaluation — one benchmark per table and figure (see
// DESIGN.md §4 for the experiment index, and cmd/alfredo-bench for the
// full sweeps with paper-side-by-side reporting), plus micro-benchmarks
// of the hot substrate paths.
//
// The macro benchmarks report the paper-comparable quantities as custom
// metrics (ms/phase, ms/invocation); ns/op of the enclosing loop is not
// the interesting number there.
package alfredo_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/bench"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/devsim"
	"github.com/alfredo-mw/alfredo/internal/filter"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/render"
	"github.com/alfredo-mw/alfredo/internal/script"
	"github.com/alfredo-mw/alfredo/internal/service"
	"github.com/alfredo-mw/alfredo/internal/ui"
	"github.com/alfredo-mw/alfredo/internal/wire"
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkTable1MouseController regenerates the MouseController column
// of Table 1 (Nokia 9300i over 802.11b WLAN).
func BenchmarkTable1MouseController(b *testing.B) {
	benchStartup(b, "mouse", devsim.Nokia9300i, device.Nokia9300i(), netsim.WLAN11b)
}

// BenchmarkTable1AlfredOShop regenerates the AlfredOShop column of
// Table 1.
func BenchmarkTable1AlfredOShop(b *testing.B) {
	benchStartup(b, "shop", devsim.Nokia9300i, device.Nokia9300i(), netsim.WLAN11b)
}

// BenchmarkTable2MouseController regenerates the MouseController column
// of Table 2 (Sony Ericsson M600i over Bluetooth 2.0).
func BenchmarkTable2MouseController(b *testing.B) {
	benchStartup(b, "mouse", devsim.SonyEricssonM600i, device.SonyEricssonM600i(), netsim.BT20)
}

// BenchmarkTable2AlfredOShop regenerates the AlfredOShop column of
// Table 2.
func BenchmarkTable2AlfredOShop(b *testing.B) {
	benchStartup(b, "shop", devsim.SonyEricssonM600i, device.SonyEricssonM600i(), netsim.BT20)
}

func benchStartup(b *testing.B, app string, sim func() *devsim.Device, prof device.Profile, link netsim.LinkProfile) {
	b.Helper()
	var acquire, build, install, start, total time.Duration
	for i := 0; i < b.N; i++ {
		t, err := bench.StartupOnce(app, sim(), prof, link)
		if err != nil {
			b.Fatal(err)
		}
		acquire += t.AcquireInterface
		build += t.BuildProxy
		install += t.InstallProxy
		start += t.StartProxy
		total += t.TotalStart()
	}
	n := time.Duration(b.N)
	b.ReportMetric(ms(acquire/n), "ms/acquire")
	b.ReportMetric(ms(build/n), "ms/build")
	b.ReportMetric(ms(install/n), "ms/install")
	b.ReportMetric(ms(start/n), "ms/start")
	b.ReportMetric(ms(total/n), "ms/total")
}

// BenchmarkFigure3 measures the Figure 3 high-load point: 128
// concurrent clients against the P4-class server over 100 Mb/s
// Ethernet (paper: <2.5 ms).
func BenchmarkFigure3(b *testing.B) {
	benchServerLoad(b, devsim.DesktopP4, netsim.Ethernet100, 128)
}

// BenchmarkFigure4 measures the Figure 4 high-load point: 384 clients
// against the Opteron cluster node over Gigabit (paper: ~2.2 ms).
func BenchmarkFigure4(b *testing.B) {
	benchServerLoad(b, devsim.OpteronNode, netsim.Gigabit, 384)
}

func benchServerLoad(b *testing.B, sim func() *devsim.Device, link netsim.LinkProfile, clients int) {
	b.Helper()
	var avg time.Duration
	for i := 0; i < b.N; i++ {
		p, err := bench.MeasureServerLoad(sim(), link, clients,
			100*time.Millisecond, 500*time.Millisecond, 2*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		avg += p.Avg
	}
	b.ReportMetric(ms(avg/time.Duration(b.N)), "ms/invocation")
}

// BenchmarkFigure5 measures the Figure 5 high-load point: 40 services
// held by the Nokia 9300i over WLAN, each invoked once per second
// (paper: <150 ms).
func BenchmarkFigure5(b *testing.B) {
	benchPhoneLoad(b, devsim.Nokia9300i, netsim.WLAN11b, 40)
}

// BenchmarkFigure6 measures the Figure 6 high-load point on the M600i
// over Bluetooth (paper: comparable to Figure 5).
func BenchmarkFigure6(b *testing.B) {
	benchPhoneLoad(b, devsim.SonyEricssonM600i, netsim.BT20, 40)
}

func benchPhoneLoad(b *testing.B, sim func() *devsim.Device, link netsim.LinkProfile, services int) {
	b.Helper()
	var avg, baseline time.Duration
	for i := 0; i < b.N; i++ {
		p, ping, err := bench.MeasurePhoneLoad(sim(), link, services,
			time.Second, 500*time.Millisecond, 2*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		avg += p.Avg
		baseline += ping
	}
	n := time.Duration(b.N)
	b.ReportMetric(ms(avg/n), "ms/invocation")
	b.ReportMetric(ms(baseline/n), "ms/ping")
}

// BenchmarkFootprint regenerates the §4.1 resource-consumption report,
// reporting the headline sizes as metrics.
func BenchmarkFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFootprint(bench.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TransferBytes["MouseController"]), "B/transfer-mouse")
		b.ReportMetric(float64(res.ProxyArchiveBytes["AlfredOShop"]), "B/proxy-shop")
		b.ReportMetric(float64(res.ClientMemoryBytes["MouseController"]), "B/mem-mouse")
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkWireInvokeRoundTrip measures encode+decode of a typical
// invocation frame (the per-message codec cost under Figures 3-6).
func BenchmarkWireInvokeRoundTrip(b *testing.B) {
	msg := &wire.Invoke{CallID: 42, ServiceID: 7, Method: "Work", Args: []any{int64(1), "payload"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := wire.EncodeMessage(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.DecodeMessage(frame[4:]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvokeThroughput measures sustained invoke throughput on the
// in-proc Gigabit fabric at fixed concurrency: 16 caller goroutines
// share one channel, each keeping a batch of 16 invocations in flight
// via InvokeAsync. No device simulation, so the number is dominated by
// the encode/dispatch/write path itself (the hot path behind Figures 3
// and 4). ns/op is the inverse of aggregate ops/sec; before the
// pipelined API the same 16 callers could only issue synchronous
// invokes (see BenchmarkInvokeThroughputSync for that path).
//
// Callers free-run over a shared ticket counter rather than through
// RunParallel: per-caller pb.Next barriers synchronize the callers'
// collect phases, which on a single-core runner serializes the pipeline
// and understates throughput.
func BenchmarkInvokeThroughput(b *testing.B) {
	env, err := bench.NewThroughputEnv()
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	const callers, batch = 16, 16
	b.ReportAllocs()
	b.ResetTimer()
	var tickets atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			calls := make([]*remote.Call, 0, batch)
			for {
				n := int64(batch)
				if over := tickets.Add(batch) - int64(b.N); over > 0 {
					n -= over
					if n <= 0 {
						return
					}
				}
				calls = calls[:0]
				for i := int64(0); i < n; i++ {
					calls = append(calls, env.Ch.InvokeAsync(env.SvcID, "Work", []any{int64(1)}))
				}
				if _, err := remote.CollectResults(calls); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkInvokeThroughputSync is BenchmarkInvokeThroughput restricted
// to the synchronous Invoke path — each caller has exactly one
// invocation in flight, so aggregate throughput is bounded by
// round-trips. This is the only mode the pre-pipelining code had, and
// the comparison point for the encoder/dispatch overhead per call.
func BenchmarkInvokeThroughputSync(b *testing.B) {
	env, err := bench.NewThroughputEnv()
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	b.ReportAllocs()
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := env.Ch.Invoke(env.SvcID, "Work", []any{int64(1)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFilterMatch measures LDAP filter evaluation (every service
// lookup and event subscription pays this).
func BenchmarkFilterMatch(b *testing.B) {
	f := filter.MustParse("(&(objectClass=bench.Echo)(service.ranking>=0)(!(blocked=true)))")
	props := map[string]any{
		"objectClass":     []string{"bench.Echo"},
		"service.ranking": 5,
		"region":          "zrh",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !f.Matches(props) {
			b.Fatal("should match")
		}
	}
}

// BenchmarkRegistryLookup measures service registry resolution with 100
// registered services.
func BenchmarkRegistryLookup(b *testing.B) {
	reg := service.NewRegistry()
	for i := 0; i < 100; i++ {
		iface := "bench.Svc"
		if i%2 == 0 {
			iface = "bench.Other"
		}
		if _, err := reg.Register([]string{iface}, &struct{}{},
			service.Properties{"idx": i}, "bench"); err != nil {
			b.Fatal(err)
		}
	}
	flt := filter.MustParse("(idx>=50)")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ref := reg.Find("bench.Svc", flt); ref == nil {
			b.Fatal("no match")
		}
	}
}

// BenchmarkControllerUIEvent measures one full interpreted rule
// execution against an in-memory host (no network).
func BenchmarkControllerUIEvent(b *testing.B) {
	prog := &script.Program{Rules: []script.Rule{{
		On: script.Trigger{UI: &script.UITrigger{Control: "btn", Kind: ui.EventPress}},
		Do: []script.Action{
			{SetVar: &script.SetVarAction{Name: "n", Value: "vars.n + 1"}},
			{Invoke: &script.InvokeAction{Method: "Work", Args: []string{"n"}}},
			{SetControl: &script.SetControlAction{Control: "lbl", Property: "value", Value: "'count ' + result"}},
		},
	}}, Init: map[string]string{"n": "0"}}
	host := &nullHost{}
	c, err := script.NewController(prog, host)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Start(); err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	ev := ui.Event{Control: "btn", Kind: ui.EventPress}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.OnUIEvent(ev)
	}
	if c.LastError() != nil {
		b.Fatal(c.LastError())
	}
}

type nullHost struct{}

func (nullHost) Invoke(service, method string, args []any) (any, error) { return args[0], nil }
func (nullHost) SetControl(string, string, any) error                   { return nil }
func (nullHost) ControlValue(string) (any, bool)                        { return nil, false }
func (nullHost) Post(string, map[string]any) error                      { return nil }

// BenchmarkRenderTextView measures rendering the shop UI on the Nokia
// text engine.
func BenchmarkRenderTextView(b *testing.B) {
	desc := &ui.Description{
		Title: "bench",
		Controls: []ui.Control{
			{ID: "l", Kind: ui.KindLabel, Text: "label", Value: "v"},
			{ID: "c", Kind: ui.KindChoice, Items: []string{"a", "b", "c"}},
			{ID: "li", Kind: ui.KindList, Items: []string{"x", "y", "z"}},
			{ID: "r", Kind: ui.KindRange, Min: 0, Max: 10, Value: 5},
			{ID: "b", Kind: ui.KindButton, Text: "go"},
		},
	}
	engine, ok := render.NewRegistry().Lookup("text")
	if !ok {
		b.Fatal("text engine missing")
	}
	view, err := engine.Render(desc, device.Nokia9300i())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := view.Render(); len(out) == 0 {
			b.Fatal("empty render")
		}
	}
}
