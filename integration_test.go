package alfredo_test

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/mousecontroller"
	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/module"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

// TestFullStackOverTCP drives the complete system over a real TCP
// loopback connection — host and phone exactly as the cmd/ tools wire
// them — covering lease exchange, acquisition, controller-driven
// interaction, snapshot events, and release.
func TestFullStackOverTCP(t *testing.T) {
	host, err := core.NewNode(core.NodeConfig{Name: "tcp-host", Profile: device.Notebook()})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	mouse := mousecontroller.New(1280, 800)
	if err := host.RegisterApp(mouse.App()); err != nil {
		t.Fatal(err)
	}
	if err := host.RegisterApp(shop.New().App()); err != nil {
		t.Fatal(err)
	}
	if err := mouse.StartSnapshots(host.Events(), 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer mouse.StopSnapshots()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	host.Serve(l)

	phone, err := core.NewNode(core.NodeConfig{Name: "tcp-phone", Profile: device.Nokia9300i()})
	if err != nil {
		t.Fatal(err)
	}
	defer phone.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	session, err := phone.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()

	// The lease lists both apps plus the shop's tier services.
	if n := len(session.Services()); n < 4 {
		t.Fatalf("lease has %d services, want >= 4", n)
	}
	if rtt, err := session.Ping(); err != nil || rtt <= 0 {
		t.Fatalf("ping = %v, %v", rtt, err)
	}

	// Shop: browse through the interpreted controller.
	shopApp, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := shopApp.View.Inject(ui.Event{Control: "categories", Kind: ui.EventSelect, Value: "tables"}); err != nil {
		t.Fatal(err)
	}
	items, _ := shopApp.View.Property("products", "items")
	if list, ok := items.([]any); !ok || len(list) != 2 {
		t.Fatalf("tables = %v (ctl err %v)", items, shopApp.Controller.LastError())
	}

	// Mouse: pad movement crosses TCP; a snapshot event comes back.
	mouseApp, err := session.Acquire(mousecontroller.InterfaceName, core.AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x0, _ := mouse.Desktop().Position()
	if err := mouseApp.View.Inject(ui.Event{Control: "cursor", Kind: ui.EventMove, Value: []any{int64(2), int64(0)}}); err != nil {
		t.Fatal(err)
	}
	if x1, _ := mouse.Desktop().Position(); x1 != x0+16 {
		t.Errorf("cursor x = %d, want %d", x1, x0+16)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		if img, ok := mouseApp.View.Property("screen", "image"); ok {
			if _, isBytes := img.([]byte); isBytes {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot never arrived over TCP")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Release: proxies disappear from the phone's registry.
	shopBundle, mouseBundle := shopApp.Bundle, mouseApp.Bundle
	shopApp.Release()
	mouseApp.Release()
	if shopBundle.State() != module.StateUninstalled || mouseBundle.State() != module.StateUninstalled {
		t.Error("proxy bundles survived release")
	}
	if phone.Framework().Registry().Find(shop.InterfaceName, nil) != nil {
		t.Error("shop proxy service survived release")
	}
}

// TestHostDeathFailsCleanly injects a provider crash mid-session: the
// phone's pending call fails, the channel tears down, and the proxy
// bundle is uninstalled — the module-unload semantics of §2.1
// ("disconnections between services can be mapped to module unload
// events, which the software can handle gracefully").
func TestHostDeathFailsCleanly(t *testing.T) {
	host, err := core.NewNode(core.NodeConfig{Name: "doomed-host", Profile: device.Notebook()})
	if err != nil {
		t.Fatal(err)
	}
	if err := host.RegisterApp(shop.New().App()); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	host.Serve(l)

	phone, err := core.NewNode(core.NodeConfig{Name: "survivor", Profile: device.Nokia9300i()})
	if err != nil {
		t.Fatal(err)
	}
	defer phone.Close()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	session, err := phone.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()

	app, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Invoke("Categories"); err != nil {
		t.Fatalf("pre-crash invoke: %v", err)
	}

	// The shop's screen dies.
	host.Close()

	deadline := time.Now().Add(3 * time.Second)
	for {
		_, err := app.Invoke("Categories")
		if err != nil {
			if !errors.Is(err, remote.ErrChannelClosed) && !strings.Contains(err.Error(), "closed") {
				t.Logf("post-crash invoke error (acceptable): %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("invocations kept succeeding after host death")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The proxy bundle is garbage-collected with the channel.
	deadline = time.Now().Add(3 * time.Second)
	for app.Bundle.State() != module.StateUninstalled {
		if time.Now().After(deadline) {
			t.Fatalf("proxy bundle state = %v after host death", app.Bundle.State())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
