// Command alfredoshop demonstrates the paper's §5.2 prototype: an
// information screen behind a shop window controlled from a phone. It
// shows the three claims the paper makes for the application:
//
//  1. Device independence: the SAME abstract UI renders on a landscape
//     Nokia 9300i (text/eRCP analog), a portrait Sony Ericsson M600i
//     (tree/AWT analog), and a browser-only iPhone (html/servlet
//     analog).
//  2. The browse/detail/compare interaction drives the remote service
//     through interpreted controller rules.
//  3. Tier negotiation: on a slow trusted link the comparison logic is
//     pulled to the phone and runs locally (smart proxy).
//
// Run with: go run ./examples/alfredoshop
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "alfredoshop:", err)
		os.Exit(1)
	}
}

func run() error {
	svc := shop.New()
	fmt.Println(shop.Blurb(false))
	fmt.Println()

	screen, err := core.NewNode(core.NodeConfig{Name: "shop-screen", Profile: device.Touchscreen()})
	if err != nil {
		return err
	}
	defer screen.Close()
	if err := screen.RegisterApp(svc.App()); err != nil {
		return err
	}

	fabric := netsim.NewFabric()
	l, err := fabric.Listen("shop-screen")
	if err != nil {
		return err
	}
	defer l.Close()
	screen.Serve(l)

	// --- 1. Device independence: three phones, three renderings. ---
	for _, prof := range []device.Profile{
		device.Nokia9300i(), device.SonyEricssonM600i(), device.IPhone(),
	} {
		if err := showOn(fabric, prof); err != nil {
			return fmt.Errorf("rendering on %s: %w", prof.Name, err)
		}
	}

	// --- 2 & 3. Interaction + tier negotiation on a slow link. ---
	proxyCode := remote.NewProxyCodeRegistry()
	if err := shop.RegisterProxyCode(proxyCode); err != nil {
		return err
	}
	phone, err := core.NewNode(core.NodeConfig{
		Name:         "nokia9300i",
		Profile:      device.Nokia9300i(),
		ProxyCode:    proxyCode,
		FreeMemoryKB: 8 * 1024,
	})
	if err != nil {
		return err
	}
	defer phone.Close()

	conn, err := fabric.Dial("shop-screen", netsim.WLAN11b)
	if err != nil {
		return err
	}
	session, err := phone.Connect(conn)
	if err != nil {
		return err
	}
	defer session.Close()

	app, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{
		Policy:  core.AdaptivePolicy{},
		Trusted: true,
	})
	if err != nil {
		return err
	}
	fmt.Println("Tier negotiation over 802.11b (trusted):")
	for dep, reason := range app.Placement.Reasons {
		fmt.Printf("  %-28s %s\n", dep, reason)
	}
	fmt.Println()

	// Browse beds and open the Malm detail (the paper's Figure 8).
	if err := app.View.Inject(ui.Event{Control: "categories", Kind: ui.EventSelect, Value: "beds"}); err != nil {
		return err
	}
	if err := app.View.Inject(ui.Event{Control: "products", Kind: ui.EventSelect, Value: "Malm"}); err != nil {
		return err
	}
	fmt.Println("Phone screen while browsing beds:")
	fmt.Println(app.View.Render())

	// Compare locally through the pulled logic tier vs remotely.
	logic := app.Deps[shop.LogicInterface]
	if logic == nil {
		return fmt.Errorf("logic tier was not pulled")
	}
	a, _ := svc.Catalog().Product("Malm")
	b, _ := svc.Catalog().Product("Duken")
	aMap := map[string]any{"name": a.Name, "price": a.Price}
	bMap := map[string]any{"name": b.Name, "price": b.Price}

	start := time.Now()
	local, err := logic.Invoke("Compare", []any{aMap, bMap})
	if err != nil {
		return err
	}
	localTime := time.Since(start)

	start = time.Now()
	if _, err := app.Invoke("Compare", "Malm", "Duken"); err != nil {
		return err
	}
	remoteTime := time.Since(start)

	fmt.Printf("Compare executed locally (pulled logic tier): %v   -> %s\n", localTime.Round(time.Microsecond), local)
	fmt.Printf("Compare executed remotely (thin-client path): %v\n", remoteTime.Round(time.Millisecond))
	fmt.Printf("Offloading the logic tier saved %v per interaction on this link.\n",
		(remoteTime - localTime).Round(time.Millisecond))
	return nil
}

// showOn connects a phone with the given profile and prints how the
// same abstract UI renders there.
func showOn(fabric *netsim.Fabric, prof device.Profile) error {
	phone, err := core.NewNode(core.NodeConfig{Name: "demo-" + prof.Name, Profile: prof})
	if err != nil {
		return err
	}
	defer phone.Close()
	conn, err := fabric.Dial("shop-screen", netsim.Loopback)
	if err != nil {
		return err
	}
	session, err := phone.Connect(conn)
	if err != nil {
		return err
	}
	defer session.Close()
	app, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{})
	if err != nil {
		return err
	}
	rep := app.View.Report()
	fmt.Printf("=== %s (%s renderer, %s) ===\n", prof.Name, rep.Renderer, prof.Display.Orientation)
	if len(rep.DroppedCapability) > 0 {
		fmt.Printf("(dropped for missing capabilities: %v)\n", rep.DroppedCapability)
	}
	out := app.View.Render()
	if rep.Renderer == "html" {
		// Print just a summary for the HTML page.
		fmt.Printf("HTML page, %d bytes; controls: %s\n", len(out), strings.Join(rep.Shown, ", "))
	} else {
		fmt.Println(out)
	}
	fmt.Println()
	return nil
}
