// Command datasync demonstrates the paper's §7 future work, implemented
// in internal/datasync: transparent synchronization of a data tier. The
// shop screen holds the authoritative shopping-list store; two phones
// hold replicas. Writes from either phone go through the master and
// appear on the other phone via forwarded change events — without any
// phone-to-phone connection.
//
// Run with: go run ./examples/datasync
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/datasync"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datasync:", err)
		os.Exit(1)
	}
}

func run() error {
	// --- Master: the shop screen owns the shopping list. ---
	store := datasync.NewStore("shopping-list")
	screen, err := core.NewNode(core.NodeConfig{Name: "shop-screen", Profile: device.Touchscreen()})
	if err != nil {
		return err
	}
	defer screen.Close()

	table, iface := datasync.Export(store, screen.Events())
	if _, err := screen.Framework().Registry().Register([]string{iface}, table,
		service.Properties{remote.PropExported: true}, "screen"); err != nil {
		return err
	}

	fabric := netsim.NewFabric()
	l, err := fabric.Listen("shop-screen")
	if err != nil {
		return err
	}
	defer l.Close()
	screen.Serve(l)

	// --- Two phones, each with a replica. ---
	alice, aliceReplica, err := phoneWithReplica(fabric, "alice", iface)
	if err != nil {
		return err
	}
	defer alice.Close()
	defer aliceReplica.Close()
	bob, bobReplica, err := phoneWithReplica(fabric, "bob", iface)
	if err != nil {
		return err
	}
	defer bob.Close()
	defer bobReplica.Close()

	// Alice adds items; they replicate to Bob through the master.
	fmt.Println("alice writes: Malm bed, 2 Lack tables")
	if err := aliceReplica.Put("Malm", int64(1)); err != nil {
		return err
	}
	if err := aliceReplica.Put("Lack", int64(2)); err != nil {
		return err
	}

	if err := waitSync(bobReplica, "Lack", int64(2)); err != nil {
		return err
	}
	fmt.Printf("bob sees (v%d): %v\n", bobReplica.Version(), bobReplica.Keys())

	// Bob removes one; Alice converges.
	fmt.Println("bob deletes: Malm")
	if err := bobReplica.Delete("Malm"); err != nil {
		return err
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := aliceReplica.Get("Malm"); !ok {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("alice never saw the delete")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("alice sees (v%d): %v\n", aliceReplica.Version(), aliceReplica.Keys())
	fmt.Printf("master state  (v%d): %v\n", store.Version(), store.Keys())
	fmt.Println("data tier stayed on the target device; both phones converged.")
	return nil
}

func phoneWithReplica(fabric *netsim.Fabric, name, iface string) (*core.Node, *datasync.Replica, error) {
	phone, err := core.NewNode(core.NodeConfig{Name: name, Profile: device.Nokia9300i()})
	if err != nil {
		return nil, nil, err
	}
	conn, err := fabric.Dial("shop-screen", netsim.WLAN11b)
	if err != nil {
		phone.Close()
		return nil, nil, err
	}
	session, err := phone.Connect(conn)
	if err != nil {
		phone.Close()
		return nil, nil, err
	}
	if err := session.Channel().SetRemoteSubscriptions([]string{datasync.ChangeTopic("shopping-list")}); err != nil {
		phone.Close()
		return nil, nil, err
	}
	time.Sleep(100 * time.Millisecond) // let the subscription land

	info, ok := session.Channel().FindRemoteService(iface)
	if !ok {
		phone.Close()
		return nil, nil, fmt.Errorf("%s: store not leased", name)
	}
	reply, err := session.Channel().Fetch(info.ID)
	if err != nil {
		phone.Close()
		return nil, nil, err
	}
	_, proxy, err := session.Channel().InstallProxy(reply)
	if err != nil {
		phone.Close()
		return nil, nil, err
	}
	replica, err := datasync.NewReplica("shopping-list", proxy, phone.Events(),
		datasync.ReplicaOptions{PollInterval: time.Second})
	if err != nil {
		phone.Close()
		return nil, nil, err
	}
	return phone, replica, nil
}

func waitSync(r *datasync.Replica, key string, want any) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := r.Get(key); ok && v == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica never converged on %s", key)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
