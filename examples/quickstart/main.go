// Command quickstart is the smallest complete AlfredO interaction: a
// target device registers a greeter application, a phone connects over
// a simulated WLAN link, leases the client side, presses a button, and
// releases the service again.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/remote"
	"github.com/alfredo-mw/alfredo/internal/script"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// --- Target device: a coffee machine with one service. ---
	brews := int64(0)
	greeter := remote.NewService("demo.CoffeeMachine").
		Method("Brew", []string{"string"}, "string", func(args []any) (any, error) {
			brews++
			return fmt.Sprintf("brewing %s (order #%d)", args[0], brews), nil
		})

	app := &core.App{
		Descriptor: &core.Descriptor{
			Service: "demo.CoffeeMachine",
			UI: &ui.Description{
				Title: "Coffee",
				Controls: []ui.Control{
					{ID: "kind", Kind: ui.KindChoice, Text: "Drink",
						Items: []string{"espresso", "cappuccino", "flat white"}, Value: "espresso"},
					{ID: "brew", Kind: ui.KindButton, Text: "Brew"},
					{ID: "status", Kind: ui.KindLabel, Text: "Ready."},
				},
			},
			Controller: &script.Program{
				Rules: []script.Rule{{
					Name: "brew-on-press",
					On:   script.Trigger{UI: &script.UITrigger{Control: "brew", Kind: ui.EventPress}},
					Do: []script.Action{
						{Invoke: &script.InvokeAction{Method: "Brew", Args: []string{"str(vars.kind) + ''"}}},
						{SetControl: &script.SetControlAction{Control: "status", Property: "value", Value: "result"}},
					},
				}, {
					Name: "remember-kind",
					On:   script.Trigger{UI: &script.UITrigger{Control: "kind", Kind: ui.EventSelect}},
					Do: []script.Action{
						{SetVar: &script.SetVarAction{Name: "kind", Value: "event.value"}},
					},
				}},
				Init: map[string]string{"kind": "'espresso'"},
			},
		},
		Service: greeter,
	}

	machine, err := core.NewNode(core.NodeConfig{Name: "coffee-machine", Profile: device.Touchscreen()})
	if err != nil {
		return err
	}
	defer machine.Close()
	if err := machine.RegisterApp(app); err != nil {
		return err
	}

	// --- Phone: connect over simulated 802.11b, lease, interact. ---
	phone, err := core.NewNode(core.NodeConfig{Name: "phone", Profile: device.Nokia9300i()})
	if err != nil {
		return err
	}
	defer phone.Close()

	fabric := netsim.NewFabric()
	l, err := fabric.Listen("coffee-machine")
	if err != nil {
		return err
	}
	defer l.Close()
	machine.Serve(l)

	conn, err := fabric.Dial("coffee-machine", netsim.WLAN11b)
	if err != nil {
		return err
	}
	session, err := phone.Connect(conn)
	if err != nil {
		return err
	}
	defer session.Close()

	fmt.Println("Lease received. Services offered by", session.RemoteID()+":")
	for _, s := range session.Services() {
		fmt.Printf("  #%d %v\n", s.ID, s.Interfaces)
	}

	acquired, err := session.Acquire("demo.CoffeeMachine", core.AcquireOptions{})
	if err != nil {
		return err
	}
	t := acquired.Timing
	fmt.Printf("\nAcquired in %v (acquire %v, build %v, install %v, start %v)\n\n",
		t.TotalStart().Round(1e6), t.AcquireInterface.Round(1e6), t.BuildProxy.Round(1e6),
		t.InstallProxy.Round(1e6), t.StartProxy.Round(1e6))

	fmt.Println(acquired.View.Render())

	// Order a cappuccino through the rendered UI.
	if err := acquired.View.Inject(ui.Event{Control: "kind", Kind: ui.EventSelect, Value: "cappuccino"}); err != nil {
		return err
	}
	if err := acquired.View.Inject(ui.Event{Control: "brew", Kind: ui.EventPress}); err != nil {
		return err
	}
	fmt.Println("After pressing Brew:")
	fmt.Println(acquired.View.Render())

	acquired.Release()
	fmt.Println("Released: proxy bundle uninstalled, phone is clean again.")
	return nil
}
