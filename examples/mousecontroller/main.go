// Command mousecontroller demonstrates the paper's §5.1 prototype: a
// phone becomes a universal remote controller for a notebook's mouse.
// The notebook hosts the PointerService and publishes screen snapshots
// as asynchronous events; the phone leases the client side over a
// simulated 802.11b link, renders the abstract UI with its cursor keys,
// moves the pointer, minimizes a window, and shows the snapshot flow.
//
// Run with: go run ./examples/mousecontroller
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/mousecontroller"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/devsim"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mousecontroller:", err)
		os.Exit(1)
	}
}

func run() error {
	svc := mousecontroller.New(1280, 800)

	notebook, err := core.NewNode(core.NodeConfig{Name: "notebook", Profile: device.Notebook()})
	if err != nil {
		return err
	}
	defer notebook.Close()
	if err := notebook.RegisterApp(svc.App()); err != nil {
		return err
	}

	// The phone is a simulated Nokia 9300i: its 150 MHz CPU makes the
	// acquisition phases take realistic (Table 1) time.
	phone, err := core.NewNode(core.NodeConfig{
		Name:    "nokia9300i",
		Profile: device.Nokia9300i(),
		Sim:     devsim.Nokia9300i(),
	})
	if err != nil {
		return err
	}
	defer phone.Close()

	fabric := netsim.NewFabric()
	l, err := fabric.Listen("notebook")
	if err != nil {
		return err
	}
	defer l.Close()
	notebook.Serve(l)

	conn, err := fabric.Dial("notebook", netsim.WLAN11b)
	if err != nil {
		return err
	}
	session, err := phone.Connect(conn)
	if err != nil {
		return err
	}
	defer session.Close()

	fmt.Println("Acquiring MouseController on the Nokia 9300i over 802.11b ...")
	app, err := session.Acquire(mousecontroller.InterfaceName, core.AcquireOptions{})
	if err != nil {
		return err
	}
	t := app.Timing
	fmt.Printf("  acquire interface  %8v\n", t.AcquireInterface.Round(time.Millisecond))
	fmt.Printf("  build proxy bundle %8v\n", t.BuildProxy.Round(time.Millisecond))
	fmt.Printf("  install proxy      %8v\n", t.InstallProxy.Round(time.Millisecond))
	fmt.Printf("  start proxy        %8v\n", t.StartProxy.Round(time.Millisecond))
	fmt.Printf("  total start time   %8v   (paper, Table 1: 4922 ms)\n\n", t.TotalStart().Round(time.Millisecond))

	rep := app.View.Report()
	fmt.Printf("The abstract PointingDevice is implemented by: %s\n\n",
		rep.Implementors[string(device.PointingDevice)])

	// Start the snapshot stream and move the pointer with "cursor keys".
	if err := svc.StartSnapshots(notebook.Events(), 200*time.Millisecond); err != nil {
		return err
	}
	defer svc.StopSnapshots()

	fmt.Println("Pressing cursor keys: 5x right, 3x down, then click ...")
	for i := 0; i < 5; i++ {
		if err := app.View.Inject(ui.Event{Control: "cursor", Kind: ui.EventMove, Value: []any{int64(1), int64(0)}}); err != nil {
			return err
		}
	}
	for i := 0; i < 3; i++ {
		if err := app.View.Inject(ui.Event{Control: "cursor", Kind: ui.EventMove, Value: []any{int64(0), int64(1)}}); err != nil {
			return err
		}
	}
	x, y := svc.Desktop().Position()
	fmt.Printf("Notebook cursor is now at %d,%d\n", x, y)

	// Move to the browser title bar and click, as in the paper's Fig. 7.
	svc.Desktop().MoveBy(-x+60, -y+35)
	if err := app.View.Inject(ui.Event{Control: "cursor", Kind: ui.EventPress}); err != nil {
		return err
	}
	fmt.Printf("Clicked: windows now: ")
	for _, w := range svc.Desktop().Windows() {
		state := "open"
		if w.Minimized {
			state = "minimized"
		}
		fmt.Printf("[%s: %s] ", w.Title, state)
	}
	fmt.Println()

	// Wait for a snapshot event to cross the link (they are large:
	// ~200 kB over 802.11b takes over a second).
	fmt.Println("\nWaiting for a screen snapshot to arrive over the simulated WLAN ...")
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if img, ok := app.View.Property("screen", "image"); ok {
			if frame, isBytes := img.([]byte); isBytes {
				fmt.Printf("Snapshot received: %d bytes (%dx%d RGB) — the ~200 kB client memory of §4.1\n",
					len(frame), mousecontroller.SnapshotWidth, mousecontroller.SnapshotHeight)
				fmt.Println("\nPhone screen:")
				fmt.Println(app.View.Render())
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("no snapshot arrived (controller err: %v)", app.Controller.LastError())
}
