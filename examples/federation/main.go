// Command federation demonstrates spontaneous discovery (paper §3.2):
// several target devices advertise themselves on an SLP-style
// discovery bus — some by answering requests, one by periodically
// broadcasting invitations — and a phone finds them, filters them with
// an LDAP predicate, and leases a service from the best match.
//
// Run with: go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/alfredo-mw/alfredo/internal/apps/shop"
	"github.com/alfredo-mw/alfredo/internal/core"
	"github.com/alfredo-mw/alfredo/internal/device"
	"github.com/alfredo-mw/alfredo/internal/discovery"
	"github.com/alfredo-mw/alfredo/internal/filter"
	"github.com/alfredo-mw/alfredo/internal/netsim"
	"github.com/alfredo-mw/alfredo/internal/ui"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "federation:", err)
		os.Exit(1)
	}
}

type screen struct {
	name  string
	node  *core.Node
	agent *discovery.Agent
}

func run() error {
	fabric := netsim.NewFabric()
	bus := discovery.NewInProcBus()

	// --- Three target devices join the environment. ---
	var screens []*screen
	for _, cfg := range []struct {
		name     string
		category string
	}{
		{"mall-screen-north", "furniture"},
		{"mall-screen-south", "furniture"},
		{"vending-machine-7", "vending"},
	} {
		s, err := newScreen(fabric, bus, cfg.name, cfg.category)
		if err != nil {
			return err
		}
		defer s.close()
		screens = append(screens, s)
	}

	// The south screen broadcasts invitations, as §3.2 describes.
	if err := screens[1].agent.StartAnnouncing(50 * time.Millisecond); err != nil {
		return err
	}
	defer screens[1].agent.StopAnnouncing()

	// --- The phone arrives. ---
	phone, err := core.NewNode(core.NodeConfig{Name: "phone", Profile: device.Nokia9300i()})
	if err != nil {
		return err
	}
	defer phone.Close()
	phoneAgent, err := discovery.NewAgent("phone", bus)
	if err != nil {
		return err
	}
	defer phoneAgent.Close()

	// Invitations surface as they arrive.
	var mu sync.Mutex
	invited := map[string]bool{}
	phoneAgent.OnAnnouncement(func(adv discovery.Advertisement) {
		mu.Lock()
		defer mu.Unlock()
		if !invited[adv.URL] {
			invited[adv.URL] = true
			fmt.Printf("Invitation received: %s %v\n", adv.URL, adv.Attributes)
		}
	})
	time.Sleep(120 * time.Millisecond)

	// Active discovery with a predicate: furniture screens only.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	found, err := phoneAgent.Discover(ctx, "alfredo", "", filter.MustParse("(category=furniture)"))
	if err != nil {
		return err
	}
	fmt.Printf("\nDiscovery for (category=furniture) found %d screens:\n", len(found))
	for _, adv := range found {
		fmt.Printf("  %s\n", adv.URL)
	}
	if len(found) == 0 {
		return fmt.Errorf("nothing discovered")
	}

	// --- Connect to the first furniture screen and lease the shop. ---
	_, addr, err := discovery.ParseServiceURL(found[0].URL)
	if err != nil {
		return err
	}
	conn, err := fabric.Dial(addr, netsim.WLAN11b)
	if err != nil {
		return err
	}
	session, err := phone.Connect(conn)
	if err != nil {
		return err
	}
	defer session.Close()

	app, err := session.Acquire(shop.InterfaceName, core.AcquireOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\nLeased %s from %s (total start %v)\n",
		shop.InterfaceName, session.RemoteID(), app.Timing.TotalStart().Round(time.Millisecond))

	if err := app.View.Inject(ui.Event{Control: "categories", Kind: ui.EventSelect, Value: "sofas"}); err != nil {
		return err
	}
	items, _ := app.View.Property("products", "items")
	fmt.Printf("Sofas on offer: %v\n", items)
	return nil
}

func newScreen(fabric *netsim.Fabric, bus discovery.Bus, name, category string) (*screen, error) {
	node, err := core.NewNode(core.NodeConfig{Name: name, Profile: device.Touchscreen()})
	if err != nil {
		return nil, err
	}
	if err := node.RegisterApp(shop.New().App()); err != nil {
		node.Close()
		return nil, err
	}
	l, err := fabric.Listen(name)
	if err != nil {
		node.Close()
		return nil, err
	}
	node.Serve(l)

	agent, err := discovery.NewAgent(name, bus)
	if err != nil {
		node.Close()
		return nil, err
	}
	if _, err := agent.Register(discovery.Advertisement{
		URL:        discovery.MakeServiceURL("alfredo", name),
		Attributes: map[string]any{"category": category, "app": shop.InterfaceName},
	}); err != nil {
		agent.Close()
		node.Close()
		return nil, err
	}
	return &screen{name: name, node: node, agent: agent}, nil
}

func (s *screen) close() {
	s.agent.Close()
	s.node.Close()
}
